"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def log_dir(tmp_path_factory):
    """A small simulated deployment written as ELFF logs."""
    out = tmp_path_factory.mktemp("cli-logs")
    code = main([
        "simulate", "--requests", "6000", "--seed", "9",
        "--out", str(out), "--per-proxy", "--boosts",
    ])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_one_file_per_proxy(self, log_dir):
        files = sorted(p.name for p in log_dir.glob("*.log"))
        assert files == [f"sg-{n}.log" for n in range(42, 49)]

    def test_files_have_elff_directives(self, log_dir):
        text = (log_dir / "sg-42.log").read_text()
        assert text.startswith("#Software:")
        assert "#Fields:" in text

    def test_combined_output(self, tmp_path):
        code = main([
            "simulate", "--requests", "1500", "--seed", "2",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "proxies.log").exists()

    def test_per_day_split(self, tmp_path):
        code = main([
            "simulate", "--requests", "2000", "--seed", "3",
            "--out", str(tmp_path), "--per-day",
        ])
        assert code == 0
        files = sorted(p.name for p in tmp_path.glob("*.log"))
        assert "2011-08-03.log" in files
        assert len(files) == 9  # one per log day

    def test_per_proxy_per_day_split(self, tmp_path):
        code = main([
            "simulate", "--requests", "2000", "--seed", "3",
            "--out", str(tmp_path), "--per-proxy", "--per-day",
        ])
        assert code == 0
        files = {p.name for p in tmp_path.glob("*.log")}
        assert "sg-42_2011-07-22.log" in files
        # July days exist only for SG-42, like the leak
        assert not any(
            name.startswith("sg-43_2011-07") for name in files
        )


class TestAnalyze:
    def test_prints_breakdown(self, log_dir, capsys):
        code = main([
            "analyze", *[str(p) for p in sorted(log_dir.glob("*.log"))],
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Traffic breakdown" in output
        assert "censored" in output
        assert "facebook.com" in output or "google.com" in output

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["analyze", str(tmp_path / "nope.log")])

    def test_streaming_mode(self, log_dir, capsys):
        code = main([
            "analyze", "--streaming",
            *[str(p) for p in sorted(log_dir.glob("*.log"))],
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "streaming" in output
        assert "Top censored domains" in output


class TestRecover:
    def test_recovers_policy(self, log_dir, capsys):
        code = main([
            "recover", *[str(p) for p in sorted(log_dir.glob("*.log"))],
            "--min-censored", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "URL-blocked domains" in output
        assert "proxy" in output  # the keyword is always recoverable


class TestReport:
    def test_report_with_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main([
            "report", "--requests", "8000", "--seed", "4",
            "--markdown", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert text.startswith("# Censorship report")
        assert "metacafe.com" in text
        assert "recovered keywords" in capsys.readouterr().out


class TestWorkers:
    """The --workers flag: accepted on simulate/analyze/report,
    rejected when < 1, and worker-count-invariant in its output."""

    @pytest.mark.parametrize("argv", [
        ["simulate", "--requests", "100", "--out", "x", "--workers", "0"],
        ["analyze", "some.log", "--workers", "0"],
        ["report", "--requests", "100", "--workers", "0"],
        ["simulate", "--requests", "100", "--out", "x", "--workers", "-2"],
        ["simulate", "--requests", "100", "--out", "x", "--workers", "two"],
    ])
    def test_rejects_non_positive_workers(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_simulate_parallel_matches_serial(self, tmp_path):
        for name, workers in (("serial", "1"), ("parallel", "2")):
            code = main([
                "simulate", "--requests", "3000", "--seed", "6",
                "--out", str(tmp_path / name), "--workers", workers,
            ])
            assert code == 0
        assert (tmp_path / "serial" / "proxies.log").read_bytes() == (
            tmp_path / "parallel" / "proxies.log"
        ).read_bytes()

    def test_analyze_streaming_with_workers(self, log_dir, capsys):
        code = main([
            "analyze", "--streaming", "--workers", "2",
            *[str(p) for p in sorted(log_dir.glob("*.log"))],
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Traffic breakdown" in output
        assert "Top censored domains" in output

    def test_analyze_frames_with_workers(self, log_dir, capsys):
        code = main([
            "analyze", "--workers", "2",
            *[str(p) for p in sorted(log_dir.glob("*.log"))],
        ])
        assert code == 0
        assert "Traffic breakdown" in capsys.readouterr().out

    def test_analyze_workers_match_serial_numbers(self, log_dir, capsys):
        logs = [str(p) for p in sorted(log_dir.glob("*.log"))]
        outputs = []
        for workers in ("1", "3"):
            assert main([
                "analyze", "--streaming", "--workers", workers, *logs,
            ]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_report_with_workers(self, capsys):
        code = main([
            "report", "--requests", "8000", "--seed", "4",
            "--workers", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "allowed" in output
        assert "top censored" in output


class TestCompress:
    """The --compress flag: gzip output that every reader accepts."""

    def test_writes_gz_with_identical_content(self, tmp_path):
        for name, extra in (("plain", []), ("gz", ["--compress"])):
            code = main([
                "simulate", "--requests", "1500", "--seed", "2",
                "--out", str(tmp_path / name), *extra,
            ])
            assert code == 0
        gz_path = tmp_path / "gz" / "proxies.log.gz"
        assert gz_path.exists()
        import gzip

        assert gzip.decompress(gz_path.read_bytes()) == (
            tmp_path / "plain" / "proxies.log"
        ).read_bytes()

    def test_analyze_reads_gz_transparently(self, tmp_path, capsys):
        assert main([
            "simulate", "--requests", "1500", "--seed", "2",
            "--out", str(tmp_path), "--compress",
        ]) == 0
        outputs = []
        for mode in ([], ["--streaming"]):
            assert main([
                "analyze", *mode, str(tmp_path / "proxies.log.gz"),
            ]) == 0
            outputs.append(capsys.readouterr().out)
        assert all("Traffic breakdown" in out for out in outputs)

    def test_gz_analysis_matches_plain(self, tmp_path, capsys):
        for name, extra in (("plain", []), ("gz", ["--compress"])):
            assert main([
                "simulate", "--requests", "1500", "--seed", "2",
                "--out", str(tmp_path / name), *extra,
            ]) == 0
        capsys.readouterr()
        outputs = []
        for log in ("plain/proxies.log", "gz/proxies.log.gz"):
            assert main(["analyze", "--streaming", str(tmp_path / log)]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestMainModule:
    """``python -m repro`` must behave exactly like the console script."""

    @staticmethod
    def _run(*argv):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env,
        )

    def test_version(self):
        from repro.version import __version__

        result = self._run("--version")
        assert result.returncode == 0
        assert result.stdout.strip() == __version__

    def test_simulate_round_trip(self, tmp_path):
        result = self._run(
            "simulate", "--requests", "600", "--seed", "7",
            "--out", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert "wrote" in result.stdout
        assert (tmp_path / "proxies.log").exists()

    def test_no_command_exits_with_usage(self):
        result = self._run()
        assert result.returncode == 2
        assert "usage:" in result.stderr


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
