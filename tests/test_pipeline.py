"""The Source→Stage→Sink pipeline layer: contracts, degenerate
inputs, and the sink monoid laws the sharded engine's reduce relies on
(hypothesis, mirroring the accumulator merge-law suite)."""

import gzip
import io
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.streaming import StreamingAnalysis
from repro.frame import RecordBatch, concat_batches, empty_frame, \
    frame_from_records
from repro.logmodel.elff import elff_header, write_log
from repro.pipeline import (
    AnonymizeStage,
    CountSink,
    ElffSink,
    FrameSink,
    GroupedElffSink,
    Pipeline,
    RecordListSink,
    RecordsSource,
    Stage,
    StreamingAnalysisSink,
    TeeSink,
)
from repro.timeline import day_epoch
from tests.helpers import make_record

# -- strategies -------------------------------------------------------------


def log_records():
    """Generated LogRecords covering every grouping/classify branch."""
    return st.builds(
        make_record,
        cs_host=st.sampled_from([
            "www.a.com", "b.com", "sub.c.org", "d.net",
        ]),
        s_ip=st.sampled_from(["82.137.200.42", "82.137.200.49"]),
        sc_filter_result=st.sampled_from(["OBSERVED", "DENIED", "PROXIED"]),
        x_exception_id=st.sampled_from([
            "-", "policy_denied", "tcp_error",
        ]),
        epoch=st.integers(1_311_292_800, 1_312_675_200),  # the leak's span
    )


def record_batches(max_size: int = 25):
    return st.lists(log_records(), max_size=max_size)


def sink_prototypes():
    """One empty sink of every mergeable flavour."""
    return st.sampled_from([
        CountSink(),
        RecordListSink(),
        StreamingAnalysisSink(),
        FrameSink(),
        ElffSink(),
        GroupedElffSink(per_proxy=True, per_day=True),
        TeeSink([CountSink(), RecordListSink()]),
    ])


def _fold(prototype, batch):
    return prototype.fresh().consume(batch)


def _fold_batched(prototype, records, batch_size):
    """Fold the same records through the column-batch entry point."""
    return prototype.fresh().consume_batches(
        RecordBatch.from_records(records).split(batch_size)
    )


# -- pipeline basics ---------------------------------------------------------


class TestPipeline:
    def test_plain_iterables_are_sources(self):
        records = [make_record(), make_record()]
        assert Pipeline(records).run(CountSink()).count == 2

    def test_stages_apply_in_order(self):
        class Mark(Stage):
            def __init__(self, tag):
                self.tag = tag

            def process(self, stream):
                for item in stream:
                    yield item + self.tag

        pipeline = Pipeline(RecordsSource(["x"]), (Mark("a"),)).through(
            Mark("b")
        )
        assert list(pipeline) == ["xab"]

    def test_through_does_not_mutate(self):
        base = Pipeline(RecordsSource([1, 2]))
        extended = base.through(AnonymizeStage([]))
        assert base.stages == ()
        assert len(extended.stages) == 1

    def test_pipelines_are_lazy(self):
        def exploding():
            raise AssertionError("should not be pulled")
            yield

        pipeline = Pipeline(exploding())
        assert pipeline.stages == ()  # constructing never iterates

    def test_zero_record_source(self):
        """An empty source leaves every sink at its identity."""
        for sink in (CountSink(), RecordListSink(), StreamingAnalysisSink(),
                     FrameSink(), ElffSink(), GroupedElffSink(),
                     TeeSink([CountSink()])):
            result = Pipeline(RecordsSource([])).run(sink)
            assert len(result) == 0
            assert result == sink.fresh()

    def test_zero_record_frame_sink_yields_empty_frame(self):
        frame = Pipeline(RecordsSource([])).run(FrameSink()).frame()
        assert len(frame) == 0
        assert frame.column_names == empty_frame().column_names


# -- degenerate sinks --------------------------------------------------------


class TestDegenerateSinks:
    def test_empty_tee_still_drains_and_counts(self):
        stream = iter([make_record(), make_record(), make_record()])
        tee = TeeSink().consume(stream)
        assert len(tee) == 3
        assert next(stream, None) is None  # the stream really was drained

    def test_tee_fans_out_every_item(self):
        count, records = CountSink(), RecordListSink()
        batch = [make_record(), make_record()]
        TeeSink([count, records]).consume(batch)
        assert count.count == 2
        assert records.records == batch

    def test_tee_merge_requires_same_arity(self):
        with pytest.raises(ValueError, match="tee"):
            TeeSink([CountSink()]).merge(TeeSink())

    def test_merging_fresh_into_populated_is_noop(self):
        batch = [make_record(cs_host="a.com"), make_record(cs_host="b.com")]
        for prototype in (CountSink(), RecordListSink(),
                          StreamingAnalysisSink(), FrameSink(), ElffSink(),
                          GroupedElffSink(per_proxy=True),
                          TeeSink([CountSink()])):
            populated = _fold(prototype, batch)
            expected = _fold(prototype, batch)
            assert populated.merge(prototype.fresh()) == expected

    def test_merging_populated_into_fresh_adopts_state(self):
        batch = [make_record(cs_host="a.com"), make_record(cs_host="b.com")]
        for prototype in (CountSink(), RecordListSink(),
                          StreamingAnalysisSink(), FrameSink(), ElffSink(),
                          GroupedElffSink(per_proxy=True),
                          TeeSink([CountSink()])):
            populated = _fold(prototype, batch)
            assert prototype.fresh().merge(populated) == populated


# -- sink monoid laws (hypothesis) ------------------------------------------


class TestSinkMergeLaws:
    """Every sink must be a merge monoid — ``fresh()`` identity,
    associative ``merge``, and merge-of-split equals single-pass — or
    ``run_sharded``'s reduce would depend on worker scheduling."""

    @settings(max_examples=40)
    @given(sink_prototypes(), record_batches())
    def test_fresh_is_identity(self, prototype, batch):
        folded = _fold(prototype, batch)
        assert prototype.fresh().merge(folded) == _fold(prototype, batch)
        assert folded.merge(prototype.fresh()) == _fold(prototype, batch)

    @settings(max_examples=40)
    @given(sink_prototypes(), record_batches(10), record_batches(10),
           record_batches(10))
    def test_merge_is_associative(self, prototype, a, b, c):
        left = _fold(prototype, a).merge(
            _fold(prototype, b).merge(_fold(prototype, c))
        )
        right = _fold(prototype, a).merge(_fold(prototype, b)).merge(
            _fold(prototype, c)
        )
        assert left == right

    @settings(max_examples=40)
    @given(sink_prototypes(), record_batches(40), st.integers(0, 40))
    def test_merge_agrees_with_single_pass(self, prototype, batch, cut):
        """Folding a split stream into fresh sinks and merging in split
        order equals folding the whole stream once — the exact shape of
        the engine's shard reduce."""
        cut = min(cut, len(batch))
        merged = _fold(prototype, batch[:cut]).merge(
            _fold(prototype, batch[cut:])
        )
        assert merged == _fold(prototype, batch)

    @settings(max_examples=25)
    @given(record_batches(30), st.integers(0, 30))
    def test_split_frames_materialize_identically(self, batch, cut):
        cut = min(cut, len(batch))
        merged = _fold(FrameSink(), batch[:cut]).merge(
            _fold(FrameSink(), batch[cut:])
        )
        reference = frame_from_records(batch)
        for name in reference.column_names:
            assert list(merged.frame().col(name)) == list(reference.col(name))

    @settings(max_examples=25)
    @given(record_batches(20), st.integers(0, 20))
    def test_pickled_shards_merge_like_local_ones(self, batch, cut):
        """A worker's sink crosses the process boundary via pickle; the
        round trip must not change what the parent reduces."""
        cut = min(cut, len(batch))
        for prototype in (FrameSink(), ElffSink(),
                          GroupedElffSink(per_proxy=True)):
            shipped = pickle.loads(pickle.dumps(_fold(prototype, batch[cut:])))
            merged = _fold(prototype, batch[:cut]).merge(shipped)
            assert merged == _fold(prototype, batch)

    @settings(max_examples=30)
    @given(record_batches(20))
    def test_streaming_sink_matches_bare_accumulator(self, batch):
        sink = _fold(StreamingAnalysisSink(), batch)
        assert sink.analysis == StreamingAnalysis().consume(batch)


# -- RecordBatch container laws (hypothesis) ---------------------------------


class TestRecordBatchLaws:
    """The columnar container must be a faithful, lossless view of the
    record list — round-trips, slicing and concatenation cannot change
    what the batch *means*, or the batched pipeline's equivalence to
    the scalar one falls apart silently."""

    @settings(max_examples=40)
    @given(record_batches())
    def test_records_round_trip(self, records):
        batch = RecordBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records

    @settings(max_examples=40)
    @given(record_batches())
    def test_rows_match_scalar_serialization(self, records):
        batch = RecordBatch.from_records(records)
        scalar_rows = [tuple(record.to_row()) for record in records]
        batched_rows = [
            tuple(str(cell) for cell in row) for row in batch.to_rows()
        ]
        assert batched_rows == scalar_rows

    @settings(max_examples=40)
    @given(record_batches(), st.integers(0, 25), st.integers(0, 25))
    def test_slice_concat_identity(self, records, start, stop):
        batch = RecordBatch.from_records(records)
        start, stop = sorted((min(start, len(batch)), min(stop, len(batch))))
        rejoined = concat_batches([
            batch.slice(0, start),
            batch.slice(start, stop),
            batch.slice(stop),
        ])
        assert rejoined == batch
        assert rejoined.to_records() == records

    @settings(max_examples=40)
    @given(record_batches(), st.integers(1, 30))
    def test_split_concat_identity(self, records, batch_size):
        batch = RecordBatch.from_records(records)
        chunks = list(batch.split(batch_size))
        assert all(1 <= len(chunk) <= batch_size for chunk in chunks)
        assert sum(len(chunk) for chunk in chunks) == len(batch)
        assert concat_batches(chunks) == batch

    def test_concat_nothing_is_the_empty_batch(self):
        assert concat_batches([]) == RecordBatch.empty()
        assert len(RecordBatch.empty()) == 0
        assert RecordBatch.empty().to_records() == []

    def test_empty_batch_round_trips(self):
        assert RecordBatch.from_records([]) == RecordBatch.empty()
        assert RecordBatch.empty().to_rows() == []


# -- batched sink laws (hypothesis) ------------------------------------------


class TestBatchedSinkLaws:
    """``consume_batches`` must land every sink in the same state as
    record-at-a-time ``consume`` — at any batch size — and batched
    folds must obey the same merge monoid the shard reduce relies on."""

    @settings(max_examples=40)
    @given(sink_prototypes(), record_batches(),
           st.sampled_from([1, 3, 7, 64]))
    def test_batched_fold_equals_scalar_fold(
        self, prototype, records, batch_size
    ):
        assert _fold_batched(prototype, records, batch_size) == \
            _fold(prototype, records)

    @settings(max_examples=40)
    @given(sink_prototypes(), record_batches(40), st.integers(0, 40),
           st.sampled_from([1, 5, 64]))
    def test_merged_batched_folds_equal_single_scalar_pass(
        self, prototype, records, cut, batch_size
    ):
        cut = min(cut, len(records))
        merged = _fold_batched(prototype, records[:cut], batch_size).merge(
            _fold_batched(prototype, records[cut:], batch_size)
        )
        assert merged == _fold(prototype, records)

    @settings(max_examples=40)
    @given(sink_prototypes(), record_batches(30), st.integers(0, 30))
    def test_batched_and_scalar_folds_merge_together(
        self, prototype, records, cut
    ):
        """Mixed-mode shards (one worker batched, one scalar) must
        still reduce to the single-pass state."""
        cut = min(cut, len(records))
        merged = _fold(prototype, records[:cut]).merge(
            _fold_batched(prototype, records[cut:], 7)
        )
        assert merged == _fold(prototype, records)


# -- ELFF sinks --------------------------------------------------------------


class TestElffSink:
    def test_buffered_body_matches_write_log(self, tmp_path):
        records = [make_record(cs_host=f"h{i}.com") for i in range(5)]
        legacy = tmp_path / "legacy.log"
        write_log(records, legacy)
        sink = ElffSink().consume(records)
        assert elff_header(sink.software) + sink.body_text() == \
            legacy.read_bytes().decode()

    def test_write_to_matches_write_log(self, tmp_path):
        records = [make_record(cs_host=f"h{i}.com") for i in range(5)]
        write_log(records, tmp_path / "legacy.log")
        ElffSink().consume(records).write_to(tmp_path / "sink.log")
        assert (tmp_path / "sink.log").read_bytes() == \
            (tmp_path / "legacy.log").read_bytes()

    def test_bound_sink_streams_to_disk(self, tmp_path):
        records = [make_record(cs_host=f"h{i}.com") for i in range(3)]
        write_log(records, tmp_path / "legacy.log")
        sink = ElffSink(tmp_path / "bound.log")
        sink.consume(records)
        sink.close()
        assert (tmp_path / "bound.log").read_bytes() == \
            (tmp_path / "legacy.log").read_bytes()

    def test_bound_sink_accepts_buffered_merge(self, tmp_path):
        records = [make_record(cs_host=f"h{i}.com") for i in range(4)]
        write_log(records, tmp_path / "legacy.log")
        part_a = ElffSink().consume(records[:2])
        part_b = ElffSink().consume(records[2:])
        bound = ElffSink(tmp_path / "merged.log")
        bound.merge(part_a).merge(part_b)
        bound.close()
        assert (tmp_path / "merged.log").read_bytes() == \
            (tmp_path / "legacy.log").read_bytes()

    def test_merge_from_bound_rejected(self, tmp_path):
        bound = ElffSink(tmp_path / "out.log")
        try:
            with pytest.raises(ValueError, match="buffered"):
                ElffSink().merge(bound)
        finally:
            bound.close()

    def test_bound_sink_is_not_picklable(self, tmp_path):
        bound = ElffSink(tmp_path / "out.log")
        try:
            with pytest.raises(TypeError, match="buffered"):
                pickle.dumps(bound)
        finally:
            bound.close()

    def test_bound_handle_mode(self):
        handle = io.StringIO()
        sink = ElffSink(handle)
        sink.add(make_record())
        assert not sink.buffered  # it streamed to the caller's handle
        assert handle.getvalue().startswith("#Software")


class TestGroupedElffSink:
    def test_combined_writes_proxies_even_when_empty(self, tmp_path):
        [(path, count)] = GroupedElffSink().write_dir(tmp_path)
        assert path.name == "proxies.log"
        assert count == 0
        assert path.read_bytes().decode() == elff_header(
            GroupedElffSink().software
        )

    def test_grouped_empty_writes_nothing(self, tmp_path):
        assert GroupedElffSink(per_proxy=True).write_dir(tmp_path) == []
        assert list(tmp_path.iterdir()) == []

    def test_per_proxy_per_day_stems(self, tmp_path):
        day1 = day_epoch("2011-08-03") + 60
        day2 = day_epoch("2011-08-04") + 60
        sink = GroupedElffSink(per_proxy=True, per_day=True)
        sink.consume([
            make_record(s_ip="82.137.200.42", epoch=day1),
            make_record(s_ip="82.137.200.49", epoch=day2),
        ])
        names = [path.name for path, _ in sink.write_dir(tmp_path)]
        assert names == ["sg-42_2011-08-03.log", "sg-49_2011-08-04.log"]

    def test_compressed_files_decompress_to_plain_bytes(self, tmp_path):
        records = [make_record(cs_host=f"h{i}.com") for i in range(6)]
        plain = GroupedElffSink().consume(records)
        packed = GroupedElffSink(compress=True).consume(records)
        [(plain_path, _)] = plain.write_dir(tmp_path / "plain")
        [(gz_path, _)] = packed.write_dir(tmp_path / "gz")
        assert gz_path.suffix == ".gz"
        assert gzip.decompress(gz_path.read_bytes()) == \
            plain_path.read_bytes()

    def test_compressed_output_is_deterministic(self, tmp_path):
        """Same records → same .log.gz bytes, run to run and dir to
        dir (no timestamp or filename leaks into the gzip header)."""
        records = [make_record(cs_host=f"h{i}.com") for i in range(6)]
        for attempt in ("one", "two"):
            sink = GroupedElffSink(compress=True).consume(records)
            sink.write_dir(tmp_path / attempt)
        assert (tmp_path / "one" / "proxies.log.gz").read_bytes() == \
            (tmp_path / "two" / "proxies.log.gz").read_bytes()
