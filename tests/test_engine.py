"""Tests for the sharded parallel engine (repro.engine).

The verification net that makes parallelism trustworthy: shard
planning is worker-count-invariant, ``workers=1`` and ``workers=N``
produce byte-identical ELFF output and identical analysis numbers,
worker failures propagate with the shard id attached, and a missing or
broken pool degrades to the serial path instead of failing the run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.streaming import StreamingAnalysis
from repro.cli import main
from repro.engine import (
    EngineFallbackWarning,
    ShardError,
    analyze_logs,
    build_scenario_sharded,
    child_seed,
    plan_shards,
    run_sharded,
    simulate_day_records,
    simulate_into,
    simulate_to_logs,
    write_logs,
)
from repro.pipeline import StreamingAnalysisSink
from repro.engine import pool as pool_module
from repro.engine import simulate as simulate_module
from repro.logmodel.elff import write_log
from repro.logmodel.fields import FIELDS
from repro.workload.config import ScenarioConfig, small_config
from tests.helpers import make_record

#: Tiny but multi-day scenario used by the determinism tests.
TINY = small_config(6_000, seed=5)


# -- module-level worker functions (must be picklable) ----------------------

def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("boom on three")
    return value


def _exit_unless_pid(parent_pid):
    # Dies hard only inside a pool worker; the serial fallback (which
    # runs in the parent) computes normally.
    if os.getpid() != parent_pid:
        os._exit(13)
    return parent_pid * 2


def _fail_then_kill_then_fail(payload):
    # Scripted failure ladder for the fallback-forensics test: in a
    # worker, raise an ordinary error on the first attempt and kill the
    # process on the retry (breaking the pool); in the parent's serial
    # re-run, fail with a *different* error.
    role, parent_pid, marker = payload
    if role == "calm":
        return "ok"
    if os.getpid() == parent_pid:
        raise RuntimeError("serial re-run boom")
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise ValueError("original boom")
    os._exit(13)


# -- shard planning ----------------------------------------------------------

class TestShardPlanning:
    def test_one_shard_per_day_in_order(self):
        plan = plan_shards(TINY)
        assert [shard.day for shard in plan.shards] == list(TINY.days)
        assert [shard.index for shard in plan.shards] == list(
            range(len(TINY.days))
        )

    def test_seeds_are_spawned_children_of_the_scenario_seed(self):
        plan = plan_shards(TINY)
        spawn_keys = [shard.seed.spawn_key for shard in plan.shards]
        assert spawn_keys == [(i,) for i in range(len(TINY.days))]
        assert all(
            shard.seed.entropy == TINY.seed for shard in plan.shards
        )
        # the sampling seed is the extra trailing child
        assert plan.sampling_seed.spawn_key == (len(TINY.days),)

    def test_planning_is_deterministic(self):
        first, second = plan_shards(TINY), plan_shards(TINY)
        for a, b in zip(first.shards, second.shards):
            assert (a.day, a.seed.entropy, a.seed.spawn_key) == (
                b.day, b.seed.entropy, b.seed.spawn_key
            )

    def test_child_seed_is_stateless(self):
        seed = plan_shards(TINY).shards[0].seed
        before = seed.n_children_spawned
        first = child_seed(seed, 0)
        second = child_seed(seed, 0)
        assert first.spawn_key == second.spawn_key == (0, 0)
        assert seed.n_children_spawned == before
        # matches what an actual spawn would have produced
        assert np.random.default_rng(first).integers(1 << 30) == (
            np.random.default_rng(
                np.random.SeedSequence(TINY.seed).spawn(1)[0].spawn(1)[0]
            ).integers(1 << 30)
        )


# -- the pool layer ----------------------------------------------------------

class TestRunSharded:
    def test_serial_preserves_order(self):
        assert run_sharded(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        values = list(range(10))
        assert run_sharded(_square, values, workers=4) == [
            v * v for v in values
        ]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            run_sharded(_square, [1], workers=0)

    def test_worker_exception_carries_shard_id(self):
        with pytest.raises(ShardError, match="day:x") as excinfo:
            run_sharded(
                _fail_on_three, [1, 2, 3], workers=2,
                labels=["day:v", "day:w", "day:x"],
            )
        assert excinfo.value.shard_id == "day:x"
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "boom on three" in str(excinfo.value)

    def test_serial_exception_carries_shard_id(self):
        with pytest.raises(ShardError) as excinfo:
            run_sharded(_fail_on_three, [3], workers=1)
        assert excinfo.value.shard_id == "shard-0"

    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        def broken_factory(workers):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(pool_module, "_make_executor", broken_factory)
        with pytest.warns(EngineFallbackWarning, match="falling back"):
            results = run_sharded(_square, [1, 2, 3], workers=4)
        assert results == [1, 4, 9]

    def test_broken_pool_falls_back_to_serial(self):
        """A worker killed mid-run (os._exit) breaks the pool; the
        engine recomputes every shard serially instead of dying."""
        pid = os.getpid()
        with pytest.warns(EngineFallbackWarning, match="pool broke"):
            results = run_sharded(_exit_unless_pid, [pid, pid], workers=2)
        assert results == [pid * 2, pid * 2]

    def test_fallback_reraises_the_original_shard_error(self, tmp_path):
        """Regression: when the pool breaks and the serial re-run of a
        shard *also* fails, the ShardError must surface the original
        pool-run exception (with the shard id), not just the re-run's
        error — which stays chained as ``__cause__`` for forensics."""
        from repro.engine import RetryPolicy

        marker = str(tmp_path / "attempted-once")
        payloads = [
            ("wild", os.getpid(), marker),
            ("calm", os.getpid(), marker),
        ]
        with pytest.warns(EngineFallbackWarning, match="pool broke"):
            with pytest.raises(ShardError) as excinfo:
                run_sharded(
                    _fail_then_kill_then_fail, payloads, workers=2,
                    labels=["day:wild", "day:calm"],
                    retry=RetryPolicy(max_retries=1, backoff_base=0.0),
                )
        assert excinfo.value.shard_id == "day:wild"
        assert isinstance(excinfo.value.error, ValueError)
        assert "original boom" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "serial re-run boom" in str(excinfo.value.__cause__)


# -- simulation determinism --------------------------------------------------

class TestSimulationDeterminism:
    def test_day_records_identical_across_worker_counts(self):
        serial = simulate_day_records(TINY, workers=1)
        parallel = simulate_day_records(TINY, workers=3)
        assert list(serial) == list(parallel) == list(TINY.days)
        for day in serial:
            assert serial[day] == parallel[day]

    def test_breakdown_identical_across_worker_counts(self):
        serial = simulate_day_records(TINY, workers=1)
        parallel = simulate_day_records(TINY, workers=2)
        fold = lambda days: StreamingAnalysis().consume(
            record for records in days.values() for record in records
        )
        assert fold(serial) == fold(parallel)

    def test_shard_failure_names_the_day(self, monkeypatch):
        def broken_shard(payload):
            raise RuntimeError("shard exploded")

        monkeypatch.setattr(simulate_module, "simulate_shard", broken_shard)
        with pytest.raises(ShardError) as excinfo:
            simulate_day_records(TINY, workers=1)
        assert excinfo.value.shard_id == f"day:{TINY.days[0]}"

    def test_build_scenario_sharded_identical_across_worker_counts(self):
        serial = build_scenario_sharded(TINY, workers=1)
        parallel = build_scenario_sharded(TINY, workers=2)
        assert serial.records_by_day == parallel.records_by_day
        assert serial.summary() == parallel.summary()
        for column in ("epoch", "cs_host", "x_exception_id", "c_ip"):
            assert np.array_equal(
                serial.full.col(column), parallel.full.col(column)
            )
            assert np.array_equal(
                serial.sample.col(column), parallel.sample.col(column)
            )

    def test_cli_simulate_byte_identical_50k(self, tmp_path):
        """The acceptance check: `repro simulate --requests 50000
        --seed 2011 --workers 4` writes byte-identical output to
        `--workers 1`."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        for out, workers in ((serial_dir, "1"), (parallel_dir, "4")):
            assert main([
                "simulate", "--requests", "50000", "--seed", "2011",
                "--out", str(out), "--workers", workers,
            ]) == 0
        serial_bytes = (serial_dir / "proxies.log").read_bytes()
        parallel_bytes = (parallel_dir / "proxies.log").read_bytes()
        assert serial_bytes == parallel_bytes

    def test_fused_simulate_to_logs_matches_legacy_two_step(self, tmp_path):
        """The fused pass (records never materialized) must write the
        exact bytes of simulate-then-write_logs, in every grouping, at
        every worker count."""
        day_records = simulate_day_records(TINY, workers=1)
        legacy_dir = tmp_path / "legacy"
        write_logs(day_records, legacy_dir, per_proxy=True, per_day=True)
        for workers in (1, 3):
            fused_dir = tmp_path / f"fused-{workers}"
            written = simulate_to_logs(
                TINY, fused_dir, per_proxy=True, per_day=True,
                workers=workers,
            )
            assert sorted(path.name for path, _ in written) == sorted(
                path.name for path in legacy_dir.iterdir()
            )
            for path, _ in written:
                assert path.read_bytes() == (
                    legacy_dir / path.name
                ).read_bytes(), path.name

    def test_fused_combined_output_matches_legacy(self, tmp_path):
        day_records = simulate_day_records(TINY, workers=1)
        write_logs(day_records, tmp_path / "legacy")
        simulate_to_logs(TINY, tmp_path / "fused", workers=2)
        assert (tmp_path / "fused" / "proxies.log").read_bytes() == (
            tmp_path / "legacy" / "proxies.log"
        ).read_bytes()

    def test_compressed_logs_identical_across_worker_counts(self, tmp_path):
        import gzip

        for workers in (1, 3):
            simulate_to_logs(
                TINY, tmp_path / str(workers), compress=True, workers=workers
            )
        serial = (tmp_path / "1" / "proxies.log.gz").read_bytes()
        parallel = (tmp_path / "3" / "proxies.log.gz").read_bytes()
        assert serial == parallel
        # and the payload is the plain-file bytes
        simulate_to_logs(TINY, tmp_path / "plain", workers=1)
        assert gzip.decompress(serial) == (
            tmp_path / "plain" / "proxies.log"
        ).read_bytes()

    def test_simulate_into_streaming_matches_record_pass(self):
        """Fusing the analysis onto simulation (the single-pass report
        path) equals analyzing the materialized records."""
        reference = StreamingAnalysis().consume(
            record
            for records in simulate_day_records(TINY, workers=1).values()
            for record in records
        )
        for workers in (1, 2):
            sink, by_day = simulate_into(
                TINY, StreamingAnalysisSink(), workers=workers
            )
            assert sink.analysis == reference
            assert sum(by_day.values()) == reference.total

    def test_write_logs_grouping_matches_leak_structure(self, tmp_path):
        day_records = simulate_day_records(TINY, workers=1)
        written = write_logs(
            day_records, tmp_path, per_proxy=True, per_day=True
        )
        names = {path.name for path, _ in written}
        assert "sg-42_2011-07-22.log" in names
        # July days exist only for SG-42, like the leak
        assert not any(
            name.startswith("sg-43_2011-07") for name in names
        )
        assert sum(count for _, count in written) == sum(
            len(records) for records in day_records.values()
        )


# -- parallel analysis -------------------------------------------------------

class TestAnalyzeEngine:
    @pytest.fixture(scope="class")
    def log_paths(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("engine-logs")
        day_records = simulate_day_records(TINY, workers=1)
        return [path for path, _ in write_logs(day_records, out, per_day=True)]

    def test_parallel_matches_serial(self, log_paths):
        serial, serial_stats = analyze_logs(log_paths, workers=1)
        parallel, parallel_stats = analyze_logs(log_paths, workers=3)
        assert serial == parallel
        assert serial.breakdown() == parallel.breakdown()
        assert serial_stats.records == parallel_stats.records
        assert serial_stats.skipped == parallel_stats.skipped == 0

    def test_matches_single_accumulator_pass(self, log_paths):
        from repro.logmodel.elff import read_log

        single = StreamingAnalysis()
        for path in log_paths:
            single.consume(read_log(path, lenient=True))
        merged, _ = analyze_logs(log_paths, workers=2)
        assert merged == single
        assert merged.top_censored(10) == single.top_censored(10)
        assert merged.day_volumes == single.day_volumes

    def test_degenerate_files_parallel_equals_serial(self, tmp_path):
        """Empty, header-only, truncated, and mixed-directive files:
        the parallel reader must not differ from serial on any."""
        empty = tmp_path / "empty.log"
        empty.write_text("")
        header_only = tmp_path / "header.log"
        write_log([], header_only)
        truncated = tmp_path / "truncated.log"
        write_log([make_record(), make_record()], truncated)
        truncated.write_text(
            truncated.read_text()[: -40]  # cut the last line mid-row
        )
        mixed = tmp_path / "mixed.log"
        write_log([make_record(), make_record()], mixed)
        text = mixed.read_text().splitlines(keepends=True)
        text.insert(4, "#Date: 2011-08-03 10:00:00\n")
        text.insert(5, f"#Fields: {' '.join(FIELDS)}\n")
        mixed.write_text("".join(text))

        paths = [empty, header_only, truncated, mixed]
        serial, serial_stats = analyze_logs(paths, workers=1)
        parallel, parallel_stats = analyze_logs(paths, workers=2)
        assert serial == parallel
        assert serial_stats.records == parallel_stats.records == 3
        # The mid-row cut leaves a torn final line: left unread for a
        # tailer to finish, not counted as malformed.
        assert serial_stats.skipped == parallel_stats.skipped == 0
        assert serial_stats.incomplete_tail == 1
        assert parallel_stats.incomplete_tail == 1
        assert serial.total == 3
