"""Tests for the catalog package: the domain universe, Facebook page
inventory, anonymizer population, and template expansion."""

import numpy as np
import pytest

from repro.catalog import facebook as fb
from repro.catalog.anonymizers import (
    CLEAN_COUNT,
    MIXED_COUNT,
    PROXY_NAMED_COUNT,
    anonymizer_sites,
)
from repro.catalog.categories import Category as C
from repro.catalog.domains import (
    FACEBOOK_PLUGIN_TEMPLATES,
    SiteSpec,
    UrlTemplate,
    build_domain_universe,
    expand_template,
    synthetic_suspected_sites,
    synthetic_tail_sites,
)
from repro.net.url import registered_domain
from tests.helpers import rng


@pytest.fixture(scope="module")
def universe():
    return build_domain_universe(tail_count=100)


class TestUniverse:
    def test_no_duplicate_hosts(self, universe):
        hosts = [site.host for site in universe]
        assert len(hosts) == len(set(hosts))

    def test_all_weights_positive(self, universe):
        assert all(site.weight > 0 for site in universe)

    def test_paper_domains_present(self, universe):
        domains = {registered_domain(site.host) for site in universe}
        for domain in ("google.com", "facebook.com", "metacafe.com",
                       "skype.com", "wikimedia.org", "amazon.com",
                       "aawsat.com", "badoo.com", "netlog.com",
                       "trafficholder.com", "panet.co.il"):
            assert domain in domains, domain

    def test_suspected_tags_match_paper_list(self, universe):
        suspected = {
            registered_domain(site.host)
            for site in universe
            if site.tagged("suspected")
        }
        for domain in ("metacafe.com", "skype.com", "wikimedia.org",
                       "amazon.com", "jumblo.com", "jeddahbikers.com",
                       "badoo.com", "islamway.com", "netlog.com"):
            assert domain in suspected, domain
        assert "facebook.com" not in suspected  # only pages are targeted
        assert "twitter.com" not in suspected

    def test_template_weights_normalizable(self, universe):
        for site in universe:
            total = sum(t.weight for t in site.templates)
            assert total > 0, site.host

    def test_google_toolbar_template_present(self, universe):
        google = next(s for s in universe if s.host == "www.google.com")
        paths = [t.path for t in google.templates]
        assert "/tbproxy/af/query" in paths

    def test_facebook_plugin_templates_marked_risky(self, universe):
        facebook = next(s for s in universe if s.host == "www.facebook.com")
        for template in facebook.templates:
            if template.path.startswith(("/plugins/", "/extern/")):
                assert template.risky, template.path

    def test_plugin_templates_carry_proxy_string(self):
        for template in FACEBOOK_PLUGIN_TEMPLATES:
            text = f"{template.path}?{template.query}".lower()
            assert "proxy" in text, template.path


class TestSyntheticPopulations:
    def test_suspected_count(self):
        sites = synthetic_suspected_sites(84)
        assert len(sites) == 84
        assert all(site.tagged("suspected") for site in sites)

    def test_suspected_deterministic(self):
        a = synthetic_suspected_sites(20)
        b = synthetic_suspected_sites(20)
        assert [(s.host, s.category) for s in a] == [
            (s.host, s.category) for s in b
        ]

    def test_tail_total_weight(self):
        sites = synthetic_tail_sites(200, total_weight=48.0)
        assert sum(site.weight for site in sites) == pytest.approx(48.0)

    def test_tail_heaviest_below_named_top(self):
        sites = synthetic_tail_sites(200, total_weight=48.0)
        assert max(site.weight for site in sites) < 3.0  # below gstatic

    def test_anonymizer_tiers(self):
        sites = anonymizer_sites()
        assert len(sites) == PROXY_NAMED_COUNT + MIXED_COUNT + CLEAN_COUNT
        proxy_named = [s for s in sites if "proxy-named" in s.tags]
        assert len(proxy_named) == PROXY_NAMED_COUNT
        for site in proxy_named:
            assert "proxy" in site.host

    def test_anonymizer_clean_tier_has_no_keyword(self):
        sites = anonymizer_sites()
        for site in sites:
            if "clean" in site.tags:
                assert "proxy" not in site.host
                for template in site.templates:
                    assert "proxy" not in f"{template.path}{template.query}"


class TestTemplateExpansion:
    def test_placeholders_replaced(self):
        template = UrlTemplate("/watch/{id}/{word}", "q={hex}&r={id}")
        path, query = expand_template(template, rng(0))
        assert "{" not in path and "{" not in query
        assert path.startswith("/watch/")

    def test_expansion_varies(self):
        template = UrlTemplate("/{id}")
        generator = rng(1)
        values = {expand_template(template, generator)[0] for _ in range(10)}
        assert len(values) > 5

    def test_plain_template_unchanged(self):
        template = UrlTemplate("/index.html", "a=1")
        assert expand_template(template, rng(0)) == ("/index.html", "a=1")


class TestFacebookInventory:
    def test_blocked_pages_match_table14(self):
        names = {page.name for page in fb.BLOCKED_PAGES}
        for name in ("Syrian.Revolution", "syria.news.F.N.N", "ShaamNews",
                     "fffm14", "DaysOfRage", "Syrian.revolution"):
            assert name in names

    def test_blocked_shares_within_bounds(self):
        for page in fb.BLOCKED_PAGES:
            assert 0.0 < page.blocked_share <= 1.0

    def test_shaamnews_mostly_allowed(self):
        shaam = next(p for p in fb.BLOCKED_PAGES if p.name == "ShaamNews")
        assert shaam.blocked_share < 0.1

    def test_allowed_pages_never_blocked(self):
        for page in fb.ALLOWED_PAGES:
            assert page.blocked_share == 0.0
            assert page.name not in fb.CUSTOM_CATEGORY_PAGES

    def test_escaping_query_form_escapes(self):
        assert fb.ESCAPING_QUERY_FORM not in fb.BLOCKED_QUERY_FORMS
