"""Metrics threaded through the sharded engine and the CLI.

The trust argument for instrumentation: aggregate counters are
identical at every worker count, simulated output is byte-identical
with and without ``--metrics``, and the pool's fallback paths count
every shard exactly once (no double counting after a serial re-run).
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.cli import main
from repro.engine import (
    EngineFallbackWarning,
    analyze_logs,
    load_frames,
    run_sharded,
    simulate_day_records,
    write_logs,
)
from repro.engine import pool as pool_module
from repro.metrics import METRICS_SCHEMA, MetricsRegistry, current_registry
from repro.workload.config import small_config

TINY = small_config(5_000, seed=11)


# -- module-level worker functions (must be picklable) ----------------------

def _count_and_square(value):
    registry = current_registry()
    if registry is not None:
        registry.inc("task.calls")
    return value * value


def _count_then_exit_unless_pid(parent_pid):
    registry = current_registry()
    if registry is not None:
        registry.inc("task.calls")
    if os.getpid() != parent_pid:
        os._exit(13)
    return parent_pid * 2


# -- run_sharded collection --------------------------------------------------

class TestRunShardedMetrics:
    def test_collects_one_shard_record_per_payload(self):
        metrics = MetricsRegistry()
        results = run_sharded(
            _count_and_square, [1, 2, 3], workers=1,
            labels=["day:a", "day:b", "day:c"], metrics=metrics,
        )
        assert results == [1, 4, 9]
        assert metrics.counters["task.calls"] == 3
        assert [shard.shard_id for shard in metrics.shards] == [
            "day:a", "day:b", "day:c",
        ]
        assert all(shard.wall_seconds >= 0 for shard in metrics.shards)
        assert all(
            shard.worker_pid == os.getpid() for shard in metrics.shards
        )

    def test_parallel_counters_match_serial(self):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        run_sharded(_count_and_square, list(range(6)), workers=1,
                    metrics=serial)
        run_sharded(_count_and_square, list(range(6)), workers=3,
                    metrics=parallel)
        assert serial.counters == parallel.counters
        assert len(serial.shards) == len(parallel.shards) == 6

    def test_without_metrics_results_are_unwrapped(self):
        assert run_sharded(_count_and_square, [2], workers=1) == [4]

    def test_sized_result_counts_as_shard_records(self):
        metrics = MetricsRegistry()
        run_sharded(list, [range(4)], workers=1, metrics=metrics)
        assert metrics.shards[0].records == 4


class TestFallbackMetrics:
    """Satellite: the fallback paths must not double-count metrics."""

    def test_broken_pool_counts_each_shard_once(self):
        """Workers die mid-run (os._exit): their partial metrics are
        discarded and only the serial re-run is counted — and the
        fallback warning fires exactly once."""
        pid = os.getpid()
        metrics = MetricsRegistry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_sharded(
                _count_then_exit_unless_pid, [pid, pid, pid], workers=2,
                metrics=metrics,
            )
        fallbacks = [
            w for w in caught if issubclass(w.category, EngineFallbackWarning)
        ]
        assert len(fallbacks) == 1
        assert results == [pid * 2] * 3
        assert metrics.counters["task.calls"] == 3
        assert len(metrics.shards) == 3
        # the serial re-run happened in the parent
        assert all(s.worker_pid == pid for s in metrics.shards)

    def test_pool_creation_failure_counts_each_shard_once(self, monkeypatch):
        def broken_factory(workers):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(pool_module, "_make_executor", broken_factory)
        metrics = MetricsRegistry()
        with pytest.warns(EngineFallbackWarning) as caught:
            results = run_sharded(
                _count_and_square, [1, 2], workers=4, metrics=metrics,
            )
        assert len(caught) == 1
        assert results == [1, 4]
        assert metrics.counters["task.calls"] == 2
        assert len(metrics.shards) == 2


# -- pipeline invariants -----------------------------------------------------

class TestPipelineMetrics:
    def test_simulate_counters_worker_invariant(self):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        records_serial = simulate_day_records(TINY, workers=1, metrics=serial)
        records_parallel = simulate_day_records(
            TINY, workers=3, metrics=parallel
        )
        assert records_serial == records_parallel
        assert serial.counters == parallel.counters
        total = sum(len(r) for r in records_serial.values())
        assert serial.counters["fleet.requests"] == total
        assert serial.counters["shard.records"] == total
        assert serial.total_records() == total
        verdicts = sum(
            count for name, count in serial.counters.items()
            if name.startswith("fleet.verdict.")
        )
        assert verdicts == total
        assert serial.counters["fleet.verdict.PROXIED"] == (
            serial.counters["cache.hits"]
        )

    def test_simulation_unperturbed_by_metrics(self):
        bare = simulate_day_records(TINY, workers=1)
        instrumented = simulate_day_records(
            TINY, workers=1, metrics=MetricsRegistry()
        )
        assert bare == instrumented

    def test_analyze_counters_match_read_stats(self, tmp_path):
        paths = [
            path for path, _ in write_logs(
                simulate_day_records(TINY, workers=1), tmp_path, per_day=True
            )
        ]
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        acc_serial, stats = analyze_logs(paths, workers=1, metrics=serial)
        analyze_logs(paths, workers=2, metrics=parallel)
        assert serial.counters == parallel.counters
        assert serial.counters["elff.read.records"] == stats.records
        assert serial.counters["elff.read.skipped"] == stats.skipped
        assert serial.counters["analysis.rows"] == acc_serial.total
        assert serial.timers["analysis.consume_seconds"].count == len(paths)

    def test_load_frames_collects_shard_metrics(self, tmp_path):
        paths = [
            path for path, _ in write_logs(
                simulate_day_records(TINY, workers=1), tmp_path, per_day=True
            )
        ]
        metrics = MetricsRegistry()
        frame = load_frames(paths, workers=1, metrics=metrics)
        assert metrics.total_records() == len(frame)
        assert metrics.counters["elff.read.records"] == len(frame)


class TestEmptyInputs:
    """Satellite: empty path lists must not crash the engine."""

    def test_load_frames_empty_returns_empty_frame(self):
        frame = load_frames([])
        assert len(frame) == 0
        assert "x_exception_id" in frame

    def test_load_frames_empty_with_metrics(self):
        metrics = MetricsRegistry()
        assert len(load_frames([], metrics=metrics)) == 0
        assert metrics.shards == []

    def test_analyze_logs_empty(self):
        analysis, stats = analyze_logs([])
        assert analysis.total == 0
        assert stats.records == stats.skipped == 0


# -- the CLI flag ------------------------------------------------------------

class TestCliMetrics:
    def test_simulate_metrics_report_and_byte_identical_output(self, tmp_path):
        """The acceptance check: counters identical for --workers 1 and
        --workers 4, ELFF bytes identical with and without --metrics."""
        documents, logs = [], []
        runs = [
            ("bare", "1", None),
            ("serial", "1", tmp_path / "serial.json"),
            ("parallel", "4", tmp_path / "parallel.json"),
        ]
        for name, workers, metrics_path in runs:
            argv = [
                "simulate", "--requests", "6000", "--seed", "2011",
                "--out", str(tmp_path / name), "--workers", workers,
            ]
            if metrics_path is not None:
                argv += ["--metrics", str(metrics_path)]
            assert main(argv) == 0
            logs.append((tmp_path / name / "proxies.log").read_bytes())
            if metrics_path is not None:
                documents.append(json.loads(metrics_path.read_text()))
        assert logs[0] == logs[1] == logs[2]
        serial, parallel = documents
        assert serial["schema"] == parallel["schema"] == METRICS_SCHEMA
        assert serial["counters"] == parallel["counters"]
        assert serial["workers"] == 1 and parallel["workers"] == 4
        assert serial["totals"]["records"] == parallel["totals"]["records"]
        assert len(serial["shards"]) == len(parallel["shards"]) == 9

    def test_analyze_streaming_metrics(self, tmp_path, capsys):
        out = tmp_path / "logs"
        assert main([
            "simulate", "--requests", "3000", "--seed", "8",
            "--out", str(out), "--per-day",
        ]) == 0
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "analyze", "--streaming", "--workers", "2",
            "--metrics", str(metrics_path),
            *[str(p) for p in sorted(out.glob("*.log"))],
        ]) == 0
        assert "metrics report" in capsys.readouterr().out
        document = json.loads(metrics_path.read_text())
        assert document["command"] == "analyze"
        assert document["counters"]["elff.read.records"] == (
            document["totals"]["records"]
        )

    def test_analyze_frames_metrics(self, tmp_path, capsys):
        out = tmp_path / "logs"
        assert main([
            "simulate", "--requests", "2000", "--seed", "8",
            "--out", str(out),
        ]) == 0
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "analyze", "--metrics", str(metrics_path),
            str(out / "proxies.log"),
        ]) == 0
        document = json.loads(metrics_path.read_text())
        assert document["totals"]["shards"] == 1
        assert document["totals"]["records"] > 0

    def test_report_metrics_and_markdown_section(self, tmp_path, capsys):
        markdown = tmp_path / "report.md"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "report", "--requests", "6000", "--seed", "4",
            "--markdown", str(markdown), "--metrics", str(metrics_path),
        ]) == 0
        assert "metrics report" in capsys.readouterr().out
        text = markdown.read_text()
        assert "## Pipeline metrics" in text
        assert "fleet.requests" in text
        document = json.loads(metrics_path.read_text())
        assert document["command"] == "report"
        assert "engine.assemble_seconds" in document["timers"]

    def test_markdown_without_metrics_has_no_section(self, tmp_path):
        markdown = tmp_path / "report.md"
        assert main([
            "report", "--requests", "6000", "--seed", "4",
            "--markdown", str(markdown),
        ]) == 0
        assert "## Pipeline metrics" not in markdown.read_text()
