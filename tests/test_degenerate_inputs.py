"""Failure-injection: every analysis must handle degenerate datasets —
empty frames, all-allowed traffic, all-censored traffic — without
raising."""

import numpy as np
import pytest

from repro.analysis import (
    anonymizers,
    categories,
    economics,
    googlecache,
    https_mitm,
    ipfilter,
    overview,
    p2p,
    pageviews,
    proxies,
    redirects,
    socialmedia,
    stringfilter,
    temporal,
    users,
    weather,
)
from repro.bittorrent import TitleDatabase, TorrentCatalog
from repro.categorizer import TrustedSourceCategorizer
from repro.frame.io import empty_frame
from repro.geoip import builtin_registry
from repro.timeline import PROTEST_DAY, day_epoch
from repro.tornet import TorDirectory
from tests.helpers import allowed_row, censored_row, make_frame


@pytest.fixture(params=["empty", "all_allowed", "all_censored"])
def degenerate(request):
    if request.param == "empty":
        return empty_frame()
    if request.param == "all_allowed":
        return make_frame([allowed_row()] * 10)
    return make_frame([censored_row(cs_uri_query=f"u=proxy&i={i}")
                       for i in range(10)])


class TestAnalysesSurviveDegenerateInput:
    def test_overview(self, degenerate):
        breakdown = overview.traffic_breakdown(degenerate)
        assert breakdown.total == len(degenerate)
        overview.top_domains(degenerate)
        overview.port_distribution(degenerate)
        overview.domain_request_distribution(degenerate)
        overview.https_breakdown(degenerate)

    def test_temporal(self, degenerate):
        start, end = day_epoch(PROTEST_DAY), day_epoch(PROTEST_DAY) + 86400
        temporal.traffic_timeseries(degenerate, start, end)
        temporal.relative_censored_volume(degenerate, PROTEST_DAY)
        temporal.top_censored_windows(degenerate, PROTEST_DAY)

    def test_proxies(self, degenerate):
        proxies.proxy_similarity(degenerate)
        proxies.category_labels_by_proxy(degenerate)

    def test_users(self, degenerate):
        users.user_analysis(degenerate)
        users.software_agent_analysis(degenerate)

    def test_stringfilter(self, degenerate):
        suspected = stringfilter.recover_censored_domains(degenerate)
        stringfilter.recover_censored_hosts(degenerate)
        stringfilter.recover_keywords(degenerate)
        stringfilter.keyword_stats(degenerate, ("proxy",))
        stringfilter.categorize_suspected(
            suspected, TrustedSourceCategorizer(), total_censored=1
        )

    def test_ipfilter(self, degenerate):
        subset = ipfilter.ipv4_subset(degenerate)
        ipfilter.country_censorship_ratio(subset, builtin_registry())
        ipfilter.israeli_subnets(subset, ())

    def test_socialmedia(self, degenerate):
        socialmedia.osn_breakdown(degenerate)
        socialmedia.facebook_pages(degenerate)
        socialmedia.facebook_plugins(degenerate)

    def test_redirects(self, degenerate):
        redirects.redirect_hosts(degenerate)
        redirects.followup_requests_after_redirect(degenerate)

    def test_circumvention(self, degenerate):
        anonymizers.anonymizer_analysis(degenerate, TrustedSourceCategorizer())
        titledb = TitleDatabase(TorrentCatalog(10, seed=1))
        p2p.bittorrent_analysis(degenerate, titledb)
        googlecache.google_cache_analysis(degenerate, set())

    def test_tor(self, degenerate):
        from repro.analysis import toranalysis

        directory = TorDirectory(20, seed=2)
        tor = toranalysis.identify_tor_traffic(degenerate, directory)
        toranalysis.tor_overview(tor)
        toranalysis.refilter_ratio(tor)

    def test_categories(self, degenerate):
        categories.censored_category_distribution(
            degenerate, TrustedSourceCategorizer()
        )

    def test_extensions(self, degenerate):
        from repro.analysis import consistency

        consistency.proxied_consistency(degenerate)
        consistency.proxied_consistency_by_domain(degenerate)
        https_mitm.https_mitm_check(degenerate)
        weather.keyword_weather(degenerate, ("proxy",))
        economics.censorship_economics(degenerate)
        pageviews.page_view_breakdown(degenerate)

    def test_drilldown(self, degenerate):
        from repro.analysis import drilldown

        drilldown.domain_profile(degenerate, "example.com")
