"""Shared fixtures.

The scenario build is the expensive step (~3 s), so it is session
-scoped: every integration-style test shares one simulated deployment.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_scenario
from repro.workload.config import small_config


@pytest.fixture(scope="session")
def scenario():
    """A small but complete simulated deployment."""
    return build_scenario(small_config(50_000, seed=11))


@pytest.fixture(scope="session")
def report(scenario):
    """The full analysis report over the shared scenario."""
    from repro.analysis.report import build_report

    return build_report(scenario)
