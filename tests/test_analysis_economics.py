"""Tests for the censorship-economics indices (analysis.economics)."""

import pytest

from repro.analysis.economics import censorship_economics, compare_policies
from tests.helpers import allowed_row, censored_row, make_frame


class TestIndices:
    def test_collateral_vs_targeted(self):
        frame = make_frame(
            # mixed domain: its censored requests are collateral
            [censored_row(cs_host="www.facebook.com",
                          cs_uri_path="/plugins/like.php")] * 3
            + [allowed_row(cs_host="www.facebook.com")] * 7
            # never-allowed domain: targeted
            + [censored_row(cs_host="www.metacafe.com")] * 2
        )
        result = censorship_economics(frame)
        assert result.censored_total == 5
        assert result.collateral_requests == 3
        assert result.targeted_requests == 2
        assert result.collateral_index_pct == pytest.approx(60.0)
        assert result.precision_index_pct == pytest.approx(40.0)

    def test_stealth_counts_unaffected_users(self):
        frame = make_frame([
            censored_row(c_ip="u1", cs_user_agent="A",
                         cs_host="www.metacafe.com"),
            allowed_row(c_ip="u2", cs_user_agent="A"),
            allowed_row(c_ip="u3", cs_user_agent="A"),
        ])
        result = censorship_economics(frame)
        assert result.total_users == 3
        assert result.unaffected_users == 2
        assert result.stealth_index_pct == pytest.approx(200 / 3)

    def test_empty_censorship(self):
        frame = make_frame([allowed_row()] * 4)
        result = censorship_economics(frame)
        assert result.censored_total == 0
        assert result.collateral_index_pct == 0.0
        assert result.stealth_index_pct == 100.0

    def test_scenario_collateral_dominates(self, scenario):
        """The paper's Section 8 reading: most censored volume is
        keyword collateral on otherwise-open domains, and the vast
        majority of users never notice."""
        result = censorship_economics(scenario.user)
        assert result.collateral_index_pct > 35.0
        assert result.stealth_index_pct > 85.0
        assert (
            result.collateral_requests + result.targeted_requests
            == result.censored_total
        )

    def test_compare_policies(self):
        base = make_frame(
            [censored_row(cs_host="www.facebook.com")] * 2
            + [allowed_row(cs_host="www.facebook.com")] * 2
        )
        alternative = make_frame([allowed_row(cs_host="www.facebook.com")] * 4)
        comparison = compare_policies(base, alternative)
        assert comparison["collateral_index_pct"][0] == pytest.approx(100.0)
        assert comparison["collateral_index_pct"][1] == 0.0
