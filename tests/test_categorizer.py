"""Tests for the URL categorizer."""

from repro.catalog.categories import Category as C
from repro.catalog.domains import build_domain_universe
from repro.categorizer import TrustedSourceCategorizer


def universe_categorizer() -> TrustedSourceCategorizer:
    return TrustedSourceCategorizer(build_domain_universe(tail_count=20))


class TestCategorize:
    def test_exact_host(self):
        categorizer = universe_categorizer()
        assert categorizer.categorize("www.metacafe.com") == C.STREAMING_MEDIA
        assert categorizer.categorize("www.skype.com") == C.INSTANT_MESSAGING

    def test_domain_fallback_for_unknown_subdomain(self):
        categorizer = universe_categorizer()
        assert categorizer.categorize("cdn7.metacafe.com") == C.STREAMING_MEDIA

    def test_facebook_page_is_social_networking(self):
        categorizer = universe_categorizer()
        assert (
            categorizer.categorize("www.facebook.com", "/Syrian.Revolution")
            == C.SOCIAL_NETWORKING
        )

    def test_facebook_plugins_are_content_server(self):
        """The path override behind Fig. 3's 'Content Server' ranking."""
        categorizer = universe_categorizer()
        for path in ("/plugins/like.php", "/extern/login_status.php",
                     "/fbml/fbjs_ajax_proxy.php", "/ajax/proxy.php"):
            assert categorizer.categorize("www.facebook.com", path) == C.CONTENT_SERVER

    def test_unknown_host_heuristics(self):
        categorizer = TrustedSourceCategorizer()
        assert categorizer.categorize("cdn.unknownsite.xyz") == C.CONTENT_SERVER
        assert categorizer.categorize("tracker.something.xyz") == C.P2P
        assert categorizer.categorize("myproxy.unknown.xyz") == C.ANONYMIZER

    def test_unknown_host_is_na(self):
        assert TrustedSourceCategorizer().categorize("qq.zz") == C.NA

    def test_ip_entries(self):
        categorizer = TrustedSourceCategorizer()
        assert categorizer.categorize("1.2.3.4") == C.NA
        categorizer.add_host("1.2.3.4", C.ANONYMIZER)
        assert categorizer.categorize("1.2.3.4") == C.ANONYMIZER

    def test_add_host(self):
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("new.example.org", C.GAMES)
        assert categorizer.categorize("new.example.org") == C.GAMES
        assert categorizer.categorize_domain("example.org") == C.GAMES

    def test_categorize_domain(self):
        categorizer = universe_categorizer()
        assert categorizer.categorize_domain("metacafe.com") == C.STREAMING_MEDIA
        assert categorizer.categorize_domain("amazon.com") == C.ONLINE_SHOPPING

    def test_is_anonymizer(self):
        categorizer = universe_categorizer()
        assert categorizer.is_anonymizer("hotspotshield.com")
        assert not categorizer.is_anonymizer("www.facebook.com")

    def test_anonymizer_population_categorized(self):
        categorizer = universe_categorizer()
        assert categorizer.categorize("www.fastproxy0.com") == C.ANONYMIZER
