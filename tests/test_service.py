"""Live ingestion service: window laws, tailing, HTTP, load generation.

The contract under test is the issue's acceptance criterion: however
records arrive — POSTed over HTTP, tailed from a growing file (torn
final line included), or batch-read — the analysis state is identical
to a batch ``analyze`` over the same bytes.  The window-store property
tests pin the monoid/eviction laws that make that equivalence
compositional.
"""

from __future__ import annotations

import asyncio
import io
import json
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import StreamingAnalysis
from repro.frame.batch import RecordBatch
from repro.logmodel.elff import read_log, write_log
from repro.service import (
    IngestService,
    LoadGenerator,
    LogTailer,
    WindowStore,
    build_payload,
)
from repro.service.window import DAY_SECONDS

from .helpers import (
    DEFAULT_EPOCH,
    allowed_row,
    censored_row,
    error_row,
    make_record,
    proxied_row,
)

# -- strategies -------------------------------------------------------------

_ROW_KINDS = (allowed_row, censored_row, error_row, proxied_row)


@st.composite
def record_lists(draw, max_days: int = 6, max_size: int = 40):
    """Records spread over up to *max_days* consecutive log-days."""
    rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_ROW_KINDS),
                st.integers(min_value=0, max_value=max_days - 1),
                st.integers(min_value=0, max_value=DAY_SECONDS - 1),
                st.sampled_from(
                    ["a.com", "b.org", "www.c.net", "sub.d.com"]
                ),
            ),
            max_size=max_size,
        )
    )
    return [
        kind(epoch=DEFAULT_EPOCH + day * DAY_SECONDS + second, cs_host=host)
        for kind, day, second, host in rows
    ]


def _records(rows):
    return [make_record(**row) for row in rows]


# -- WindowStore laws -------------------------------------------------------


class TestWindowStore:
    def test_rejects_zero_retention(self):
        with pytest.raises(ValueError):
            WindowStore(retention_days=0)

    def test_window_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WindowStore().window(0)

    @settings(deadline=None)
    @given(record_lists())
    def test_unbounded_store_equals_single_pass(self, rows):
        """With no retention the full window IS the batch analysis."""
        records = _records(rows)
        store = WindowStore()
        for record in records:
            store.add(record)
        assert store.window() == StreamingAnalysis().consume(records)

    @settings(deadline=None)
    @given(record_lists(), st.integers(min_value=1, max_value=4))
    def test_eviction_is_restriction(self, rows, retention):
        """A retained store's window equals a fresh batch analyze over
        exactly the records of the retained days (the issue's
        eviction-restriction law: evict a day = drop its accumulator,
        re-merge the rest)."""
        records = _records(rows)
        store = WindowStore(retention_days=retention)
        for record in records:
            store.add(record)
        retained = set(store.retained_days())
        restricted = [
            record for record in records
            if record.epoch // DAY_SECONDS in retained
        ]
        assert store.window() == StreamingAnalysis().consume(restricted)
        assert len(retained) <= retention
        assert store.evicted_records == len(records) - len(restricted)
        assert len(store) == len(records)

    @settings(deadline=None)
    @given(record_lists(), st.integers(min_value=1, max_value=4))
    def test_windowed_view_restricts_days(self, rows, window):
        """window(N) merges exactly the newest N retained days."""
        records = _records(rows)
        store = WindowStore()
        for record in records:
            store.add(record)
        newest = set(store.retained_days()[-window:])
        restricted = [
            record for record in records
            if record.epoch // DAY_SECONDS in newest
        ]
        assert store.window(window) == StreamingAnalysis().consume(restricted)

    @settings(deadline=None)
    @given(record_lists())
    def test_add_batch_equals_add(self, rows):
        records = _records(rows)
        scalar = WindowStore(retention_days=3)
        for record in records:
            scalar.add(record)
        batched = WindowStore(retention_days=3)
        if records:
            batched.add_batch(RecordBatch.from_records(records))
        assert scalar.days == batched.days

    @settings(deadline=None)
    @given(record_lists(), st.integers(min_value=0, max_value=40))
    def test_merge_equals_single_pass(self, rows, cut):
        """Splitting a stream across two stores and merging equals one
        store consuming the whole stream (no retention: full monoid)."""
        records = _records(rows)
        cut = min(cut, len(records))
        left, right = WindowStore(), WindowStore()
        for record in records[:cut]:
            left.add(record)
        for record in records[cut:]:
            right.add(record)
        whole = WindowStore()
        for record in records:
            whole.add(record)
        assert left.merge(right) == whole

    def test_fresh_preserves_retention(self):
        assert WindowStore(retention_days=5).fresh().retention_days == 5

    def test_late_record_older_than_window_is_evicted(self):
        store = WindowStore(retention_days=2)
        store.add(make_record(epoch=DEFAULT_EPOCH + 3 * DAY_SECONDS))
        store.add(make_record(epoch=DEFAULT_EPOCH + 4 * DAY_SECONDS))
        store.add(make_record(epoch=DEFAULT_EPOCH))  # long-closed day
        assert store.retained_days() == [
            (DEFAULT_EPOCH + 3 * DAY_SECONDS) // DAY_SECONDS,
            (DEFAULT_EPOCH + 4 * DAY_SECONDS) // DAY_SECONDS,
        ]
        assert store.evicted_records == 1


# -- tailing a growing file -------------------------------------------------


class TestLogTailer:
    def _write_then_cut(self, path, records, keep_bytes):
        write_log(records, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:keep_bytes])
        return raw

    def test_tail_across_growth_equals_batch(self, tmp_path):
        """Records folded across polls — including a torn final line
        completed later — equal one lenient batch read of the final
        bytes (the issue's acceptance e2e)."""
        log = tmp_path / "grow.log"
        records = [
            make_record(epoch=DEFAULT_EPOCH + i * 3600, cs_host=f"h{i}.com")
            for i in range(8)
        ]
        write_log(records[:5], log)
        raw = log.read_bytes()
        # tear the file mid-way through the 5th record's line
        log.write_bytes(raw[:-20])

        tailer = LogTailer(log)
        acc = StreamingAnalysis()
        acc.consume(tailer.poll())
        assert acc.total == 4
        assert tailer.stats.incomplete_tail == 1
        assert tailer.stats.skipped == 0

        # the writer finishes the torn line and appends more records
        with open(log, "ab") as handle:
            handle.write(raw[-20:])
        buffer = io.StringIO()
        write_log(records[5:], buffer)
        body = "".join(
            line + "\r\n"
            for line in buffer.getvalue().splitlines()
            if not line.startswith("#")
        )
        with open(log, "a", newline="") as handle:
            handle.write(body)
        acc.consume(tailer.poll())

        batch = StreamingAnalysis()
        batch.consume(read_log(log, lenient=True))
        assert acc == batch
        assert acc.total == 8

    def test_unchanged_file_is_not_reread(self, tmp_path):
        log = tmp_path / "static.log"
        write_log([make_record()], log)
        tailer = LogTailer(log)
        assert len(tailer.poll()) == 1
        assert tailer.poll() == []
        assert tailer.polls == 1

    def test_missing_file_polls_empty(self, tmp_path):
        tailer = LogTailer(tmp_path / "not-yet.log")
        assert tailer.poll() == []
        assert tailer.polls == 0

    def test_rotation_resets_offset(self, tmp_path):
        log = tmp_path / "rotate.log"
        write_log([make_record(cs_host=f"h{i}.com") for i in range(5)], log)
        tailer = LogTailer(log)
        assert len(tailer.poll()) == 5
        # rotation: the file is replaced by a shorter successor
        write_log([make_record(cs_host="new.com")], log)
        records = tailer.poll()
        assert [r.cs_host for r in records] == ["new.com"]
        assert tailer.rotations == 1

    def test_gzip_tail(self, tmp_path):
        log = tmp_path / "tail.log.gz"
        records = [make_record(cs_host=f"h{i}.com") for i in range(6)]
        write_log(records, log)
        tailer = LogTailer(log)
        got = tailer.poll()
        assert [r.cs_host for r in got] == [r.cs_host for r in records]


# -- the HTTP service -------------------------------------------------------


def _get(url: str):
    with urllib.request.urlopen(url) as response:
        return response.status, json.load(response)


def _post(url: str, body: bytes):
    request = urllib.request.Request(url, data=body, method="POST")
    try:
        with urllib.request.urlopen(request) as response:
            return (
                response.status,
                dict(response.headers),
                json.load(response),
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.load(error)


async def _with_service(run, **kwargs):
    service = IngestService(**kwargs)
    await service.start()
    try:
        return await run(service)
    finally:
        await service.stop()


class TestIngestService:
    def test_ingest_equals_batch_analyze(self):
        """POSTed payloads fold to exactly the batch analysis of the
        same bytes."""
        payloads = [build_payload(i, 8, 3) for i in range(6)]

        async def run(service):
            url = f"http://{service.host}:{service.port}"
            for payload in payloads:
                status, _, body = await asyncio.to_thread(
                    _post, url + "/ingest", payload.encode()
                )
                assert status == 202 and body["accepted"]
            await service.drain()
            return await asyncio.to_thread(_get, url + "/analysis")

        status, body = asyncio.run(_with_service(run))
        batch = StreamingAnalysis()
        for payload in payloads:
            batch.consume(read_log(io.StringIO(payload), lenient=True))
        assert status == 200
        assert body["breakdown"]["total"] == batch.total
        assert body["breakdown"]["censored"] == batch.censored
        assert body["top_censored"] == [
            list(item) for item in batch.top_censored(10)
        ]

    def test_windowed_analysis_param(self):
        async def run(service):
            url = f"http://{service.host}:{service.port}"
            await asyncio.to_thread(
                _post, url + "/ingest", build_payload(0, 30, 3).encode()
            )
            await service.drain()
            status, body = await asyncio.to_thread(
                _get, url + "/analysis?window=1"
            )
            assert status == 200
            newest = service.store.retained_days()[-1]
            assert body["breakdown"]["total"] == (
                service.store.days[newest].total
            )
            empty_status, _, _ = await asyncio.to_thread(
                _post, url + "/ingest", b""
            )
            assert empty_status == 202
            status, _, _ = await asyncio.to_thread(
                _post, url + "/ingest", b"\xff\xfe garbage \xff"
            )
            assert status == 400

        asyncio.run(_with_service(run))

    def test_analysis_rejects_bad_window(self):
        async def run(service):
            url = f"http://{service.host}:{service.port}"
            for query in ("window=0", "window=-2", "window=x"):
                status, _ = await asyncio.to_thread(
                    _get_allowing_errors, f"{url}/analysis?{query}"
                )
                assert status == 400

        asyncio.run(_with_service(run))

    def test_backpressure_answers_429_with_retry_after(self):
        """A full ingest queue throttles instead of buffering."""

        async def run(service):
            url = f"http://{service.host}:{service.port}"
            # stall the fold loop so the queue can only fill
            for task in service._tasks:
                task.cancel()
            await asyncio.gather(*service._tasks, return_exceptions=True)
            service._tasks.clear()
            payload = build_payload(0, 2, 1).encode()
            statuses = []
            for _ in range(4):
                status, headers, _ = await asyncio.to_thread(
                    _post, url + "/ingest", payload
                )
                statuses.append((status, headers.get("Retry-After")))
            # drain manually so stop() does not wait on the queue
            while not service.queue.empty():
                service.queue.get_nowait()
                service.queue.task_done()
            return statuses

        statuses = asyncio.run(_with_service(run, queue_size=2))
        assert statuses[:2] == [(202, None), (202, None)]
        assert statuses[2][0] == 429 and statuses[3][0] == 429
        assert float(statuses[2][1]) > 0

    def test_healthz_and_stats(self):
        async def run(service):
            url = f"http://{service.host}:{service.port}"
            await asyncio.to_thread(
                _post, url + "/ingest", build_payload(0, 5, 2).encode()
            )
            await service.drain()
            _, health = await asyncio.to_thread(_get, url + "/healthz")
            first = await asyncio.to_thread(_get, url + "/stats")
            second = await asyncio.to_thread(_get, url + "/stats")
            return health, first[1], second[1]

        health, first, second = asyncio.run(_with_service(run))
        assert health["status"] == "ok"
        assert health["records"] == 5
        assert first["totals"]["service.fold.records"] == 5
        assert first["window"]["counters"]["service.fold.records"] == 5
        # the second scrape's window starts at the first scrape's mark:
        # nothing was ingested in between, so the delta is empty while
        # the totals persist
        assert second["window"]["counters"] == {}
        assert second["totals"]["service.fold.records"] == 5
        assert second["window"]["seconds"] > 0

    def test_unknown_paths_and_methods(self):
        async def run(service):
            url = f"http://{service.host}:{service.port}"
            status, _ = await asyncio.to_thread(
                _get_allowing_errors, url + "/nope"
            )
            assert status == 404
            status, _, _ = await asyncio.to_thread(
                _post, url + "/healthz", b""
            )
            assert status == 405

        asyncio.run(_with_service(run))

    def test_tail_ingest_matches_batch(self, tmp_path):
        """The tail path through the running service equals batch
        analyze of the final file."""
        log = tmp_path / "grow.log"
        records = [
            make_record(epoch=DEFAULT_EPOCH + i, cs_host=f"h{i}.com")
            for i in range(10)
        ]
        write_log(records[:6], log)
        raw = log.read_bytes()
        log.write_bytes(raw[:-15])  # torn final line

        async def run():
            service = IngestService(
                tail_paths=(log,), poll_interval=0.02
            )
            await service.start()
            try:
                await asyncio.sleep(0.1)
                assert service.store.window().total == 5
                with open(log, "ab") as handle:
                    handle.write(raw[-15:])
                buffer = io.StringIO()
                write_log(records[6:], buffer)
                tail_rows = "".join(
                    line + "\r\n"
                    for line in buffer.getvalue().splitlines()
                    if not line.startswith("#")
                )
                with open(log, "a", newline="") as handle:
                    handle.write(tail_rows)
                await asyncio.sleep(0.1)
            finally:
                await service.stop()
            return service.store.window()

        live = asyncio.run(run())
        batch = StreamingAnalysis()
        batch.consume(read_log(log, lenient=True))
        assert live == batch
        assert live.total == 10

    def test_stop_leaves_no_tasks(self):
        async def run():
            service = IngestService(tail_paths=())
            await service.start()
            await service.stop()
            return [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]

        assert asyncio.run(run()) == []


def _get_allowing_errors(url: str):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


# -- the load generator -----------------------------------------------------


class TestLoadGenerator:
    def test_build_payload_is_deterministic(self):
        assert build_payload(3, 10, 2) == build_payload(3, 10, 2)
        assert build_payload(3, 10, 2) != build_payload(4, 10, 2)
        records = list(
            read_log(io.StringIO(build_payload(0, 25, 3)), lenient=True)
        )
        assert len(records) == 25
        analysis = StreamingAnalysis().consume(records)
        assert analysis.censored > 0 and analysis.allowed > 0

    def test_loadgen_against_service(self):
        """A fixed-rate run is fully accepted, the queue stays bounded,
        and the server's state equals batch analyze of the payloads."""

        async def run(service):
            generator = LoadGenerator(
                service.host, service.port,
                rate=400.0, total=30, lines_per_request=5,
                workers=3, quiet=True,
            )
            summary = await generator.run()
            await service.drain()
            return summary

        service = IngestService(queue_size=16)

        async def driver():
            await service.start()
            try:
                return await run(service)
            finally:
                await service.stop()

        summary = asyncio.run(driver())
        assert summary["accepted"] == 30
        assert summary["errors"] == 0
        assert summary["lines"] == 150
        assert summary["server"]["records"] == 150
        # bounded backpressure: depth never exceeded the queue size
        assert service.max_queue_depth <= 16
        batch = StreamingAnalysis()
        for i in range(30):
            batch.consume(
                read_log(io.StringIO(build_payload(i, 5, 3)), lenient=True)
            )
        assert service.store.window() == batch

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LoadGenerator("h", 1, rate=0, total=1)
        with pytest.raises(ValueError):
            LoadGenerator("h", 1, rate=1, total=0)


class TestHealthzRegime:
    """/healthz surfaces the service's regime label (classification is
    regime-neutral, so the label is provenance, not behaviour)."""

    @staticmethod
    async def _health(service):
        url = f"http://{service.host}:{service.port}"
        _, health = await asyncio.to_thread(_get, url + "/healthz")
        return health

    def test_default_regime_is_syria(self):
        health = asyncio.run(_with_service(self._health))
        assert health["regime"] == "syria"

    def test_regime_label_is_configurable(self):
        health = asyncio.run(
            _with_service(self._health, regime="pakistan")
        )
        assert health["regime"] == "pakistan"


class TestRetryAfterBackoff:
    """429 handling: the server's Retry-After is honoured with capped
    exponential growth across consecutive throttles of one payload,
    and every deferred re-send is counted apart from the throttle
    responses that caused it."""

    def test_backoff_delay_is_capped_exponential(self):
        from repro.service import backoff_delay

        assert backoff_delay(1.0, 0, 5.0) == 1.0
        assert backoff_delay(1.0, 1, 5.0) == 2.0
        assert backoff_delay(1.0, 2, 5.0) == 4.0
        assert backoff_delay(1.0, 3, 5.0) == 5.0  # capped
        assert backoff_delay(10.0, 0, 5.0) == 5.0  # capped immediately
        assert backoff_delay(-2.0, 1, 5.0) == 0.0  # hostile header

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            LoadGenerator("h", 1, rate=1, total=1, retry_after_cap=0)

    def test_throttled_run_counts_deferred_sends(self):
        """Against a server that 429s every payload twice before
        accepting it, the deferred count is exact and every record
        still lands."""
        DENIALS = 2
        TOTAL = 3

        async def drive():
            seen: dict[bytes, int] = {}

            async def handle(reader, writer):
                try:
                    while True:
                        request = await reader.readline()
                        if not request:
                            break
                        headers = {}
                        while True:
                            line = (await reader.readline()).decode().strip()
                            if not line:
                                break
                            name, _, value = line.partition(":")
                            headers[name.strip().lower()] = value.strip()
                        length = int(headers.get("content-length", "0"))
                        body = await reader.readexactly(length)
                        count = seen.get(body, 0)
                        seen[body] = count + 1
                        if request.startswith(b"POST") and count < DENIALS:
                            head = (
                                "HTTP/1.1 429 Too Many Requests\r\n"
                                "Retry-After: 0.005\r\n"
                                "Content-Length: 2\r\n\r\n"
                            )
                            writer.write(head.encode() + b"{}")
                        else:
                            payload = b'{"queue_depth": 0}'
                            head = (
                                "HTTP/1.1 202 Accepted\r\n"
                                f"Content-Length: {len(payload)}\r\n\r\n"
                            )
                            writer.write(head.encode() + payload)
                        await writer.drain()
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    pass
                finally:
                    writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                generator = LoadGenerator(
                    "127.0.0.1", port, rate=500.0, total=TOTAL,
                    lines_per_request=2, workers=1, quiet=True,
                    retry_after_cap=0.05,
                )
                return await generator.run()
            finally:
                server.close()
                await server.wait_closed()

        summary = asyncio.run(drive())
        assert summary["accepted"] == TOTAL
        assert summary["throttled"] == TOTAL * DENIALS
        assert summary["deferred"] == TOTAL * DENIALS
        assert summary["errors"] == 0
        assert summary["requests"] == TOTAL * (DENIALS + 1)

    def test_summary_reports_zero_deferred_without_throttling(self):
        """The deferred counter exists (as 0) even on a clean run, so
        dashboards can rely on the key."""

        async def drive():
            service = IngestService(queue_size=16)
            await service.start()
            try:
                generator = LoadGenerator(
                    service.host, service.port,
                    rate=400.0, total=5, lines_per_request=2,
                    workers=2, quiet=True,
                )
                summary = await generator.run()
                await service.drain()
                return summary
            finally:
                await service.stop()

        summary = asyncio.run(drive())
        assert summary["accepted"] == 5
        assert summary["deferred"] == 0
        assert summary["throttled"] == 0
