"""More property-based tests: extension rules, economics, page views,
the audit, and the GroupBy numeric aggregates."""

import numpy as np
from hypothesis import given, strategies as st

from repro.analysis.economics import censorship_economics
from repro.analysis.pageviews import page_view_breakdown
from repro.frame import LogFrame
from repro.logmodel.audit import AuditFindings, audit_record_cip
from repro.policy.extensions import ExtensionRule, PortRule, TimeOfDayRule
from repro.policy.rules import RequestView
from tests.helpers import allowed_row, censored_row, make_frame


def traffic_rows():
    """Random mixes of allowed/censored rows over a small host pool."""
    return st.lists(
        st.tuples(
            st.sampled_from(["a.com", "b.com", "c.com"]),
            st.booleans(),  # censored?
            st.sampled_from(["u1", "u2", "u3"]),
            st.integers(0, 3600),
        ),
        min_size=1,
        max_size=40,
    )


def build(rows):
    return make_frame([
        (censored_row if is_censored else allowed_row)(
            cs_host=host, c_ip=client, epoch=1312329600 + offset
        )
        for host, is_censored, client, offset in rows
    ])


class TestEconomicsProperties:
    @given(traffic_rows())
    def test_indices_partition_censored(self, rows):
        frame = build(rows)
        result = censorship_economics(frame)
        assert (
            result.collateral_requests + result.targeted_requests
            == result.censored_total
        )
        assert 0.0 <= result.stealth_index_pct <= 100.0

    @given(traffic_rows())
    def test_stealth_consistent_with_users(self, rows):
        frame = build(rows)
        result = censorship_economics(frame)
        assert 0 <= result.unaffected_users <= result.total_users


class TestPageViewProperties:
    @given(traffic_rows())
    def test_views_bounded_by_requests(self, rows):
        frame = build(rows)
        result = page_view_breakdown(frame)
        assert 1 <= result.page_views <= result.requests
        assert result.requests_per_view >= 1.0

    @given(traffic_rows())
    def test_censored_views_track_censored_requests(self, rows):
        """A view is censored iff it contains a censored request, so
        censored views exist exactly when censored requests do, and
        never outnumber them.  (The *share* comparison is not a
        universal invariant — it holds empirically because allowed
        requests cluster into views more than censored ones do.)"""
        frame = build(rows)
        result = page_view_breakdown(frame)
        censored_requests = result.request_censored_pct * result.requests / 100
        censored_views = result.page_censored_pct * result.page_views / 100
        assert (censored_views > 0) == (censored_requests > 0)
        assert censored_views <= censored_requests + 1e-6


class TestAuditProperties:
    @given(st.lists(st.sampled_from(
        ["0.0.0.0", "31.9.1.2", "10.0.0.1", "deadbeef01234567", "ffff0000"]
    ), max_size=30))
    def test_counts_partition(self, cips):
        findings = AuditFindings()
        for c_ip in cips:
            audit_record_cip(c_ip, findings)
        assert (
            findings.zeroed + findings.hashed + findings.raw_client_addresses
            == findings.records == len(cips)
        )
        assert findings.safe == ("31.9.1.2" not in cips and "10.0.0.1" not in cips)


class TestExtensionRuleProperties:
    @given(st.integers(1, 65535), st.sets(st.integers(1, 65535), max_size=6))
    def test_port_rule_soundness(self, port, blocked):
        rule = PortRule(blocked)
        verdict = rule.evaluate(RequestView(host="x.com", port=port))
        assert (verdict is not None) == (port in blocked)

    @given(
        st.integers(0, 23),
        st.integers(0, 23),
        st.integers(1_312_329_600, 1_312_329_600 + 7 * 86400),
    )
    def test_time_window_covers_complement(self, start, end, epoch):
        """A rule inside [s,e) plus one inside the complement window
        fire exactly once for any epoch (when s != e)."""
        if start == end:
            return
        inner = PortRule([1080])
        view = RequestView(host="x.com", port=1080, epoch=epoch)
        in_window = TimeOfDayRule(inner, start, end).evaluate(view)
        out_window = TimeOfDayRule(inner, end, start).evaluate(view)
        assert (in_window is None) != (out_window is None)

    @given(st.from_regex(r"/[a-z0-9/]{0,12}(\.[a-z]{1,5})?", fullmatch=True))
    def test_extension_rule_only_matches_listed(self, path):
        rule = ExtensionRule(["exe"])
        verdict = rule.evaluate(RequestView(host="x.com", path=path))
        matches = path.lower().endswith(".exe")
        assert (verdict is not None) == matches


class TestGroupByAggregateProperties:
    @given(st.lists(
        st.tuples(st.sampled_from("ab"), st.integers(-50, 50)),
        min_size=1, max_size=40,
    ))
    def test_min_max_mean_bruteforce(self, pairs):
        frame = LogFrame({
            "k": np.array([k for k, _ in pairs], dtype=object),
            "v": np.array([v for _, v in pairs], dtype=np.int64),
        })
        grouped = frame.groupby("k")
        expected: dict[str, list[int]] = {}
        for k, v in pairs:
            expected.setdefault(k, []).append(v)
        assert grouped.min("v") == {k: float(min(vs)) for k, vs in expected.items()}
        assert grouped.max("v") == {k: float(max(vs)) for k, vs in expected.items()}
        means = grouped.mean("v")
        for k, vs in expected.items():
            assert abs(means[k] - sum(vs) / len(vs)) < 1e-9
