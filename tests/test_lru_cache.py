"""Tests for the behavioural LRU proxy cache."""

import numpy as np
import pytest

from repro.policy import HostBlacklistRule, PolicyEngine
from repro.policy.cache import CacheModel, LruProxyCache
from repro.policy.errors import ErrorModel
from repro.proxy import SG9000
from repro.timeline import day_epoch
from repro.traffic import Request
from tests.helpers import rng


def request(path="/a.jpg", content_type="image/jpeg", **kw) -> Request:
    defaults = dict(
        epoch=day_epoch("2011-08-03"),
        c_ip="31.9.1.2",
        user_agent="UA",
        host="www.example.com",
        path=path,
        content_type=content_type,
    )
    defaults.update(kw)
    return Request(**defaults)


class TestLruProxyCache:
    def test_hit_on_repeat(self):
        cache = LruProxyCache(capacity=10)
        generator = rng(0)
        assert not cache.lookup("k1", generator)  # miss, inserted
        assert cache.lookup("k1", generator)  # hit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_order(self):
        cache = LruProxyCache(capacity=2)
        generator = rng(0)
        cache.lookup("a", generator)
        cache.lookup("b", generator)
        cache.lookup("a", generator)  # refresh a
        cache.lookup("c", generator)  # evicts b (LRU)
        assert cache.lookup("a", generator)  # still cached
        assert not cache.lookup("b", generator)  # evicted

    def test_cacheable_filter(self):
        assert LruProxyCache.cacheable("GET", "image/jpeg")
        assert LruProxyCache.cacheable("GET", "text/html")
        assert not LruProxyCache.cacheable("POST", "image/jpeg")
        assert not LruProxyCache.cacheable("CONNECT", "-")

    def test_validation(self):
        with pytest.raises(ValueError):
            LruProxyCache(capacity=0)
        with pytest.raises(ValueError):
            LruProxyCache(stale_decision_share=2.0)


class TestSG9000WithLru:
    def make_proxy(self, cache):
        return SG9000(
            "SG-42",
            PolicyEngine([HostBlacklistRule(["blocked.example.com"])]),
            cache=cache,
            error_model=ErrorModel({}),
        )

    def test_repeat_request_is_proxied(self):
        proxy = self.make_proxy(LruProxyCache(capacity=100))
        generator = rng(1)
        first = proxy.process(request(), generator)
        second = proxy.process(request(), generator)
        assert first.sc_filter_result == "OBSERVED"
        assert second.sc_filter_result == "PROXIED"
        assert second.s_action == "TCP_HIT"

    def test_distinct_urls_miss(self):
        proxy = self.make_proxy(LruProxyCache(capacity=100))
        generator = rng(1)
        proxy.process(request(path="/a.jpg"), generator)
        other = proxy.process(request(path="/b.jpg"), generator)
        assert other.sc_filter_result == "OBSERVED"

    def test_cached_censored_request_can_lose_exception(self):
        proxy = self.make_proxy(
            LruProxyCache(capacity=100, stale_decision_share=1.0)
        )
        generator = rng(1)
        first = proxy.process(
            request(host="blocked.example.com"), generator
        )
        second = proxy.process(
            request(host="blocked.example.com"), generator
        )
        assert first.x_exception_id == "policy_denied"
        assert second.sc_filter_result == "PROXIED"
        assert second.x_exception_id == "-"  # the paper's inconsistency

    def test_connect_never_cached(self):
        from repro.traffic import connect_request

        proxy = self.make_proxy(LruProxyCache(capacity=100))
        generator = rng(1)
        tunnel = connect_request(
            day_epoch("2011-08-03"), "31.9.1.2", "UA",
            "www.example.com", 443, "browsing",
        )
        proxy.process(tunnel, generator)
        again = proxy.process(tunnel, generator)
        assert again.sc_filter_result == "OBSERVED"


class TestCompatibility:
    def test_probabilistic_model_still_default(self):
        """The probabilistic model answers the same protocol."""
        model = CacheModel(cache_rate=1.0)
        assert model.cacheable("CONNECT", "-")
        assert model.lookup("anything", rng(0))
