"""Tests for the log model: fields, classification, records, ELFF I/O,
anonymization."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.logmodel.anonymize import (
    ZEROED_CLIENT_IP,
    hash_client_ip,
    is_anonymized,
    zero_client_ip,
)
from repro.logmodel.classify import (
    CENSOR_EXCEPTIONS,
    ERROR_EXCEPTIONS,
    TrafficClass,
    classify,
    classify_exception,
    is_censored,
    is_denied,
)
from repro.logmodel.elff import (
    LogFormatError,
    ReadStats,
    read_log,
    read_log_rows,
    write_log,
)
from repro.logmodel.fields import (
    FIELDS,
    PROXY_NAMES,
    proxy_ip,
    proxy_name_from_ip,
)
from repro.logmodel.record import (
    LogRecord,
    date_time_to_epoch,
    epoch_to_date_time,
)
from tests.helpers import make_record


class TestFields:
    def test_schema_has_26_fields(self):
        assert len(FIELDS) == 26

    def test_paper_fields_present(self):
        for name in (
            "cs-host", "cs-uri-path", "cs-uri-query", "sc-filter-result",
            "x-exception-id", "cs-categories", "s-ip", "c-ip",
        ):
            assert name in FIELDS

    def test_proxy_names(self):
        assert PROXY_NAMES == tuple(f"SG-{n}" for n in range(42, 49))

    def test_proxy_ip_roundtrip(self):
        for name in PROXY_NAMES:
            suffix = int(name.split("-")[1])
            assert proxy_name_from_ip(proxy_ip(suffix)) == name

    def test_proxy_ip_rejects_unknown(self):
        with pytest.raises(ValueError):
            proxy_ip(99)
        with pytest.raises(ValueError):
            proxy_name_from_ip("10.0.0.1")


class TestClassification:
    """The paper's Section 3.3 classification semantics."""

    def test_no_exception_is_allowed(self):
        assert classify_exception("-") is TrafficClass.ALLOWED

    @pytest.mark.parametrize("exc", sorted(CENSOR_EXCEPTIONS))
    def test_policy_exceptions_are_censored(self, exc):
        assert classify_exception(exc) is TrafficClass.CENSORED
        assert is_censored(exc)
        assert is_denied(exc)

    @pytest.mark.parametrize("exc", sorted(ERROR_EXCEPTIONS))
    def test_network_exceptions_are_errors(self, exc):
        assert classify_exception(exc) is TrafficClass.ERROR
        assert not is_censored(exc)
        assert is_denied(exc)

    def test_unknown_exception_counts_as_error(self):
        assert classify_exception("weird_new_thing") is TrafficClass.ERROR

    def test_proxied_separate_flag(self):
        assert (
            classify("PROXIED", "-", proxied_separate=True)
            is TrafficClass.PROXIED
        )
        # folded mode classifies by exception id, like the paper's
        # headline statistics
        assert classify("PROXIED", "-") is TrafficClass.ALLOWED
        assert (
            classify("PROXIED", "policy_denied") is TrafficClass.CENSORED
        )


class TestRecord:
    def test_row_roundtrip(self):
        record = make_record(
            cs_host="www.skype.com",
            cs_uri_path="/download",
            cs_uri_query="a=1",
            x_exception_id="policy_denied",
            sc_filter_result="DENIED",
            sc_status=403,
        )
        restored = LogRecord.from_row(record.to_row())
        assert restored == record

    def test_row_has_26_columns(self):
        assert len(make_record().to_row()) == 26

    def test_from_row_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            LogRecord.from_row(["x"] * 25)

    def test_traffic_class_property(self):
        assert make_record().traffic_class is TrafficClass.ALLOWED
        assert (
            make_record(x_exception_id="policy_denied").traffic_class
            is TrafficClass.CENSORED
        )

    def test_matchable_text(self):
        record = make_record(
            cs_host="h.com", cs_uri_path="/p", cs_uri_query="q=1"
        )
        assert record.matchable_text() == "h.com/p?q=1"

    def test_epoch_date_roundtrip(self):
        date, time = epoch_to_date_time(1312329600)
        assert date == "2011-08-03"
        assert time == "00:00:00"
        assert date_time_to_epoch(date, time) == 1312329600

    @given(st.integers(min_value=0, max_value=2**31))
    def test_epoch_roundtrip_property(self, epoch):
        date, time = epoch_to_date_time(epoch)
        assert date_time_to_epoch(date, time) == epoch


class TestElff:
    def test_write_read_roundtrip(self, tmp_path):
        records = [
            make_record(cs_host=f"host{i}.com", epoch=1312329600 + i)
            for i in range(20)
        ]
        path = tmp_path / "log.csv"
        written = write_log(records, path)
        assert written == 20
        restored = list(read_log(path))
        assert restored == records

    def test_directives_written(self, tmp_path):
        path = tmp_path / "log.csv"
        write_log([make_record()], path)
        text = path.read_text()
        assert text.startswith("#Software:")
        assert "#Fields: " + " ".join(FIELDS) in text

    def test_read_rejects_wrong_schema(self):
        bad = io.StringIO("#Fields: date time\n")
        with pytest.raises(LogFormatError):
            list(read_log(bad))

    def test_read_rows_skips_directives(self, tmp_path):
        path = tmp_path / "log.csv"
        write_log([make_record(), make_record()], path)
        rows = list(read_log_rows(path))
        assert len(rows) == 2
        assert all(len(row) == 26 for row in rows)

    def test_read_rows_rejects_short_rows(self):
        bad = io.StringIO("a,b,c\n")
        with pytest.raises(LogFormatError):
            list(read_log_rows(bad))

    def test_record_with_commas_survives_csv(self, tmp_path):
        record = make_record(cs_categories="Blocked sites; unavailable",
                             cs_uri_query="a=1,2,3")
        path = tmp_path / "log.csv"
        write_log([record], path)
        assert list(read_log(path)) == [record]


class TestLenientEdgeCases:
    """Degenerate files the Telecomix leak actually contains.  The
    sharded engine reads every file with ``lenient=True``, so the
    lenient reader's behavior on these shapes is what keeps parallel
    analysis identical to serial."""

    def test_truncated_last_line_is_left_unread(self, tmp_path):
        """A torn final line (writer mid-flush) is not malformed data:
        it is left unread with its offset reported, so a tailer can
        resume from it and the last record is never dropped."""
        path = tmp_path / "truncated.log"
        records = [make_record(cs_host=f"host{i}.com") for i in range(3)]
        write_log(records, path)
        text = path.read_text()
        path.write_text(text[:-35])  # cut the final row short
        stats = ReadStats()
        kept = list(read_log(path, lenient=True, stats=stats))
        assert kept == records[:2]
        assert stats.records == 2
        assert stats.skipped == 0
        assert stats.first_error is None
        assert stats.incomplete_tail == 1
        torn_start = text[:-35].rfind("\n") + 1
        assert stats.incomplete_tail_offset == torn_start

    def test_truncated_line_raises_when_strict(self, tmp_path):
        path = tmp_path / "truncated.log"
        write_log([make_record()], path)
        path.write_text(path.read_text()[:-35])
        with pytest.raises(LogFormatError):
            list(read_log(path))

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_text("")
        stats = ReadStats()
        assert list(read_log(path, lenient=True, stats=stats)) == []
        assert (stats.records, stats.skipped) == (0, 0)

    def test_header_only_file_yields_nothing(self, tmp_path):
        path = tmp_path / "header.log"
        write_log([], path)  # directives, zero data rows
        stats = ReadStats()
        assert list(read_log(path, lenient=True, stats=stats)) == []
        assert (stats.records, stats.skipped) == (0, 0)

    def test_mid_file_directives_are_skipped(self, tmp_path):
        """Concatenated logs re-declare their directives mid-file (the
        leak's files are per-day dumps glued together)."""
        first = [make_record(cs_host="a.com")]
        second = [make_record(cs_host="b.com")]
        path = tmp_path / "mixed.log"
        with open(path, "w", newline="") as handle:
            write_log(first, handle)
            write_log(second, handle)
        kept = list(read_log(path, lenient=True))
        assert kept == first + second

    def test_mid_file_schema_change_still_raises(self, tmp_path):
        path = tmp_path / "bad.log"
        with open(path, "w", newline="") as handle:
            write_log([make_record()], handle)
            handle.write("#Fields: date time\n")
        with pytest.raises(LogFormatError):
            list(read_log(path, lenient=True))

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "gaps.log"
        write_log([make_record()], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_log(path, lenient=True))) == 1

    def test_stats_merge(self):
        left = ReadStats(records=2, skipped=1, first_error="bad row 3")
        right = ReadStats(records=5, skipped=2, first_error="bad row 9")
        left += right
        assert left == ReadStats(records=7, skipped=3,
                                 first_error="bad row 3")
        # first_error fills from the right operand when absent
        empty = ReadStats()
        empty += ReadStats(first_error="only error")
        assert empty.first_error == "only error"


class TestAnonymize:
    def test_zeroing(self):
        assert zero_client_ip("31.9.1.2") == ZEROED_CLIENT_IP

    def test_hash_is_deterministic(self):
        assert hash_client_ip("31.9.1.2") == hash_client_ip("31.9.1.2")

    def test_hash_distinguishes_clients(self):
        assert hash_client_ip("31.9.1.2") != hash_client_ip("31.9.1.3")

    def test_hash_is_keyed(self):
        assert hash_client_ip("31.9.1.2", key=b"a") != hash_client_ip(
            "31.9.1.2", key=b"b"
        )

    def test_is_anonymized(self):
        assert is_anonymized(ZEROED_CLIENT_IP)
        assert is_anonymized(hash_client_ip("31.9.1.2"))
        assert not is_anonymized("31.9.1.2")
