"""Tests for repro.net.ip."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ip import (
    MAX_IPV4,
    IPv4Network,
    format_ipv4,
    ip_in_network,
    is_ipv4,
    parse_ipv4,
    parse_network,
)


class TestParseFormat:
    def test_parse_simple(self):
        assert parse_ipv4("1.2.3.4") == (1 << 24) + (2 << 16) + (3 << 8) + 4

    def test_parse_extremes(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == MAX_IPV4

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.04x", "a.b.c.d", "1.2.3.-1"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    def test_format_roundtrip_known(self):
        assert format_ipv4(parse_ipv4("82.137.200.42")) == "82.137.200.42"

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(-1)
        with pytest.raises(ValueError):
            format_ipv4(MAX_IPV4 + 1)

    def test_is_ipv4(self):
        assert is_ipv4("10.0.0.1")
        assert not is_ipv4("example.com")
        assert not is_ipv4("1.2.3.256")

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip_property(self, addr):
        assert parse_ipv4(format_ipv4(addr)) == addr

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_formatted_is_recognized(self, addr):
        assert is_ipv4(format_ipv4(addr))


class TestNetwork:
    def test_canonicalizes_host_bits(self):
        net = IPv4Network(parse_ipv4("84.229.1.7"), 16)
        assert format_ipv4(net.network) == "84.229.0.0"

    def test_membership(self):
        net = parse_network("84.229.0.0/16")
        assert parse_ipv4("84.229.13.37") in net
        assert parse_ipv4("84.230.0.1") not in net
        assert ip_in_network(parse_ipv4("84.229.0.0"), net)

    def test_first_last_size(self):
        net = parse_network("212.235.64.0/19")
        assert format_ipv4(net.first) == "212.235.64.0"
        assert format_ipv4(net.last) == "212.235.95.255"
        assert net.size == 1 << 13

    def test_zero_prefix_covers_everything(self):
        net = parse_network("0.0.0.0/0")
        assert parse_ipv4("255.255.255.255") in net
        assert net.size == 1 << 32

    def test_slash32_single_host(self):
        net = parse_network("1.2.3.4/32")
        assert net.size == 1
        assert parse_ipv4("1.2.3.4") in net
        assert parse_ipv4("1.2.3.5") not in net

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            IPv4Network(0, 33)
        with pytest.raises(ValueError):
            parse_network("1.2.3.4")  # missing prefix

    def test_subnets(self):
        net = parse_network("10.0.0.0/24")
        halves = net.subnets(25)
        assert [str(h) for h in halves] == ["10.0.0.0/25", "10.0.0.128/25"]
        with pytest.raises(ValueError):
            net.subnets(23)

    def test_contains_network(self):
        outer = parse_network("46.120.0.0/15")
        inner = parse_network("46.121.0.0/16")
        assert outer.contains_network(inner)
        assert not inner.contains_network(outer)

    def test_nth(self):
        net = parse_network("10.0.0.0/30")
        assert format_ipv4(net.nth(3)) == "10.0.0.3"
        with pytest.raises(IndexError):
            net.nth(4)

    def test_str(self):
        assert str(parse_network("89.138.0.0/15")) == "89.138.0.0/15"

    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=32),
    )
    def test_network_contains_its_range_property(self, addr, prefix):
        net = IPv4Network(addr, prefix)
        assert net.first in net
        assert net.last in net
        assert net.last - net.first + 1 == net.size
