"""Tests for the streaming (single-pass) analysis."""

import io

import pytest

from repro.analysis.overview import top_domains, traffic_breakdown
from repro.analysis.streaming import StreamingAnalysis
from repro.logmodel.elff import read_log, write_log
from tests.helpers import (
    allowed_row,
    censored_row,
    error_row,
    make_record,
    proxied_row,
)


def records():
    rows = (
        [dict(cs_host="www.google.com")] * 5
        + [dict(cs_host="www.metacafe.com", sc_filter_result="DENIED",
                x_exception_id="policy_denied")] * 2
        + [dict(cs_host="www.a.com", sc_filter_result="DENIED",
                x_exception_id="tcp_error")]
        + [dict(cs_host="www.google.com", sc_filter_result="PROXIED")]
    )
    return [make_record(**row) for row in rows]


class TestStreamingAnalysis:
    def test_breakdown(self):
        acc = StreamingAnalysis().consume(records())
        breakdown = acc.breakdown()
        assert breakdown.total == 9
        assert breakdown.allowed == 6  # incl. the exception-free PROXIED row
        assert breakdown.censored == 2
        assert breakdown.errors == 1
        assert breakdown.proxied == 1
        assert breakdown.censored_pct == pytest.approx(200 / 9)

    def test_top_domains(self):
        acc = StreamingAnalysis().consume(records())
        assert acc.top_allowed(1) == [("google.com", 6)]
        assert acc.top_censored(1) == [("metacafe.com", 2)]

    def test_exception_mix(self):
        acc = StreamingAnalysis().consume(records())
        assert acc.exceptions["policy_denied"] == 2
        assert acc.exceptions["tcp_error"] == 1

    def test_merge_equals_sequential(self):
        recs = records()
        combined = StreamingAnalysis().consume(recs)
        left = StreamingAnalysis().consume(recs[:4])
        right = StreamingAnalysis().consume(recs[4:])
        merged = left.merge(right)
        assert merged.breakdown() == combined.breakdown()
        assert merged.allowed_domains == combined.allowed_domains

    def test_streaming_over_elff_file(self):
        buffer = io.StringIO()
        write_log(records(), buffer)
        buffer.seek(0)
        acc = StreamingAnalysis().consume(read_log(buffer))
        assert acc.total == 9

    def test_matches_frame_analysis_on_scenario(self, scenario):
        """The one-pass counters agree exactly with the columnar
        pipeline."""
        from repro.logmodel.record import LogRecord

        frame = scenario.full
        acc = StreamingAnalysis()
        for i in range(0, len(frame), 7):  # a sparse but exact sample
            row = frame.row(i)
            acc.add(make_record(
                epoch=int(row["epoch"]),
                cs_host=str(row["cs_host"]),
                sc_filter_result=str(row["sc_filter_result"]),
                x_exception_id=str(row["x_exception_id"]),
            ))
        # compare against the frame restricted to the same rows
        import numpy as np

        indices = np.arange(0, len(frame), 7)
        sub = frame.take(indices)
        breakdown = traffic_breakdown(sub)
        assert acc.breakdown().total == breakdown.total
        assert acc.breakdown().censored == breakdown.censored
        assert acc.breakdown().allowed == breakdown.allowed
        # per-domain censored counters agree exactly (top-N ordering
        # may differ on ties, so compare the counts themselves)
        frame_top = {
            r.domain: r.requests for r in top_domains(sub, n=5).censored
        }
        for domain, count in frame_top.items():
            assert acc.censored_domains[domain] == count

    def test_day_volumes(self):
        acc = StreamingAnalysis().consume(records())
        assert sum(acc.day_volumes.values()) == 9


def varied_records(n: int = 120, seed: int = 3):
    """A mixed synthetic stream: several domains, exception ids,
    filter results, and epochs spanning three log days."""
    import numpy as np

    rng = np.random.default_rng(seed)
    hosts = ["www.google.com", "www.metacafe.com", "www.a.com",
             "sub.b.org", "c.net"]
    exceptions = ["-", "-", "-", "policy_denied", "tcp_error",
                  "internal_error"]
    results = ["OBSERVED", "DENIED", "PROXIED"]
    base = 1312329600
    return [
        make_record(
            cs_host=hosts[int(rng.integers(len(hosts)))],
            x_exception_id=exceptions[int(rng.integers(len(exceptions)))],
            sc_filter_result=results[int(rng.integers(len(results)))],
            epoch=base + int(rng.integers(3 * 86400)),
        )
        for _ in range(n)
    ]


class TestMergeLaws:
    """merge(split(records)) == consume(records) — the contract the
    sharded engine's reduce step rests on."""

    def test_merge_of_random_splits_equals_single_pass(self):
        import numpy as np

        recs = varied_records()
        combined = StreamingAnalysis().consume(recs)
        rng = np.random.default_rng(11)
        for _ in range(10):
            cuts = sorted(
                int(c) for c in rng.integers(0, len(recs) + 1, size=3)
            )
            bounds = [0, *cuts, len(recs)]
            parts = [
                StreamingAnalysis().consume(recs[lo:hi])
                for lo, hi in zip(bounds, bounds[1:])
            ]
            merged = StreamingAnalysis.merge_all(parts)
            assert merged == combined
            assert merged.breakdown() == combined.breakdown()
            assert merged.day_volumes == combined.day_volumes
            assert merged.top_allowed(5) == combined.top_allowed(5)
            assert merged.top_censored(5) == combined.top_censored(5)

    def test_iadd_is_in_place_merge(self):
        recs = varied_records(40)
        acc = StreamingAnalysis().consume(recs[:25])
        acc += StreamingAnalysis().consume(recs[25:])
        assert acc == StreamingAnalysis().consume(recs)

    def test_add_is_non_mutating(self):
        recs = varied_records(30)
        left = StreamingAnalysis().consume(recs[:10])
        right = StreamingAnalysis().consume(recs[10:])
        snapshot = left.copy()
        total = left + right
        assert left == snapshot  # operand untouched
        assert total == StreamingAnalysis().consume(recs)

    def test_empty_accumulator_is_identity(self):
        acc = StreamingAnalysis().consume(varied_records(20))
        assert StreamingAnalysis() + acc == acc
        assert acc + StreamingAnalysis() == acc

    def test_sum_reduces_shards(self):
        recs = varied_records(60)
        parts = [
            StreamingAnalysis().consume(recs[i:i + 15])
            for i in range(0, 60, 15)
        ]
        assert sum(parts, StreamingAnalysis()) == (
            StreamingAnalysis().consume(recs)
        )

    def test_copy_is_independent(self):
        original = StreamingAnalysis().consume(varied_records(10))
        clone = original.copy()
        clone.add(make_record(cs_host="www.new.com"))
        assert clone != original
        assert clone.total == original.total + 1
