"""Calibration tests: the simulated traffic's *shape* against the
paper's published numbers.

These are looser than the golden-envelope tests (which guard against
accidental drift) — they assert the correspondence to the paper that
EXPERIMENTS.md documents, at the shared test scenario's scale.
"""

import numpy as np
import pytest

from repro.analysis.common import (
    censored_mask,
    domain_column,
    https_mask,
    observed_allowed_mask,
)
from repro.analysis.overview import top_domains, traffic_breakdown
from repro.analysis.stringfilter import keyword_stats
from repro.policy.syria import KEYWORDS
from repro.timeline import day_span


@pytest.fixture(scope="module")
def shares(scenario):
    """Per-domain share of allowed traffic (%)."""
    result = top_domains(scenario.full, n=30)
    return {row.domain: row.share_pct for row in result.allowed}


class TestAllowedShares:
    """Table 4 allowed column: paper share vs measured, ±40 % rel."""

    @pytest.mark.parametrize("domain,paper_share", [
        ("google.com", 7.19),
        ("xvideos.com", 3.34),
        ("gstatic.com", 3.30),
        ("facebook.com", 2.54),
        ("microsoft.com", 2.38),
        ("fbcdn.net", 2.35),
        ("windowsupdate.com", 2.20),
        ("google-analytics.com", 1.77),
    ])
    def test_named_share(self, shares, domain, paper_share):
        measured = shares.get(domain, 0.0)
        assert measured == pytest.approx(paper_share, rel=0.4), domain

    def test_google_is_top(self, shares):
        assert max(shares, key=shares.get) == "google.com"


class TestCensoredShares:
    """Table 4 censored column: paper share vs measured, generous."""

    @pytest.fixture(scope="class")
    def censored_shares(self, scenario):
        result = top_domains(scenario.full, n=30)
        return {row.domain: row.share_pct for row in result.censored}

    @pytest.mark.parametrize("domain,paper_share,rel", [
        ("facebook.com", 21.91, 0.5),
        ("metacafe.com", 17.33, 0.5),
        ("skype.com", 6.83, 0.8),
        ("live.com", 5.98, 0.8),
        ("wikimedia.org", 4.16, 0.9),
    ])
    def test_named_share(self, censored_shares, domain, paper_share, rel):
        measured = censored_shares.get(domain, 0.0)
        assert measured == pytest.approx(paper_share, rel=rel), domain

    def test_facebook_and_metacafe_lead(self, censored_shares):
        ranked = sorted(censored_shares, key=censored_shares.get,
                        reverse=True)
        assert set(ranked[:2]) == {"facebook.com", "metacafe.com"}


class TestKeywordShares:
    def test_proxy_dominates_like_the_paper(self, scenario):
        rows = keyword_stats(scenario.full, KEYWORDS)
        proxy = next(r for r in rows if r.keyword == "proxy")
        # paper: 53.6 % of censored traffic
        assert 35.0 < proxy.censored_share_pct < 65.0
        others = sum(
            r.censored_share_pct for r in rows if r.keyword != "proxy"
        )
        assert others < 10.0  # the four minor keywords are small


class TestTrafficClassShares:
    def test_error_hierarchy(self, scenario):
        """Table 3: tcp_error > internal_error > invalid_request >
        unsupported_protocol > dns errors."""
        rows = {
            r.exception_id: r.share_pct
            for r in traffic_breakdown(scenario.full).exception_rows
        }
        assert rows["tcp_error"] > rows["internal_error"] * 0.8
        assert rows["internal_error"] > rows["invalid_request"]
        assert rows["invalid_request"] > rows["unsupported_protocol"]
        assert rows["unsupported_protocol"] > rows.get(
            "dns_unresolved_hostname", 0.0
        )

    def test_user_slice_error_mix_differs(self, scenario):
        """Table 3's D_user column: internal_error overtakes
        tcp_error on the July slice."""
        rows = {
            r.exception_id: r.share_pct
            for r in traffic_breakdown(scenario.user).exception_rows
        }
        assert rows["internal_error"] > rows["tcp_error"]

    def test_https_share_small(self, scenario):
        https = https_mask(scenario.full)
        share = 100.0 * https.mean()
        # paper: 0.08 %; ours is higher by construction but stays <2 %
        assert 0.1 < share < 2.0


class TestStructuralInvariants:
    def test_suspected_domains_have_zero_allowed(self, scenario):
        """Ground truth: every policy-blocked domain has no allowed
        OBSERVED request anywhere in the logs."""
        domains = domain_column(scenario.full)
        allowed = observed_allowed_mask(scenario.full)
        for blocked in scenario.policy.blocked_domains:
            assert int(((domains == blocked) & allowed).sum()) == 0, blocked

    def test_keywords_never_in_allowed_urls(self, scenario):
        frame = scenario.full
        allowed = observed_allowed_mask(frame)
        hosts = frame.col("cs_host")[allowed]
        paths = frame.col("cs_uri_path")[allowed]
        queries = frame.col("cs_uri_query")[allowed]
        for keyword in KEYWORDS:
            for h, p, q in zip(hosts, paths, queries):
                text = f"{h}{p}?{q}".lower()
                assert keyword not in text, (keyword, text)

    def test_july_days_tiny_vs_august(self, scenario):
        """Even boosted, the July days stay well below August (the
        leak's single-proxy period)."""
        epochs = scenario.full.col("epoch")
        july = int(((epochs >= day_span("2011-07-22")[0])
                    & (epochs < day_span("2011-07-31")[1])).sum())
        assert july < len(scenario.full) * 0.45

    def test_censorship_every_august_day(self, scenario):
        censored = censored_mask(scenario.full)
        epochs = scenario.full.col("epoch")
        for day in ("2011-08-01", "2011-08-02", "2011-08-03",
                    "2011-08-04", "2011-08-05", "2011-08-06"):
            start, end = day_span(day)
            in_day = (epochs >= start) & (epochs < end)
            assert int((censored & in_day).sum()) > 0, day

    def test_redirects_are_rare(self, scenario):
        exceptions = scenario.full.col("x_exception_id")
        redirects = int((exceptions == "policy_redirect").sum())
        denials = int((exceptions == "policy_denied").sum())
        assert redirects < denials * 0.2
