"""Tests for the additional SGOS rule types (policy.extensions)."""

import pytest

from repro.catalog.categories import Category as C
from repro.categorizer import TrustedSourceCategorizer
from repro.policy import Action, PolicyEngine, RequestView
from repro.policy.extensions import (
    BrowserTypeRule,
    CategoryRule,
    ExtensionRule,
    PortRule,
    TimeOfDayRule,
)
from repro.timeline import day_epoch


def view(**kw) -> RequestView:
    defaults = dict(host="example.com", path="/")
    defaults.update(kw)
    return RequestView(**defaults)


class TestCategoryRule:
    def make_rule(self):
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("games.example.com", C.GAMES)
        categorizer.add_host("news.example.com", C.GENERAL_NEWS)
        return CategoryRule([C.GAMES], categorizer.categorize)

    def test_blocks_category(self):
        verdict = self.make_rule().evaluate(view(host="games.example.com"))
        assert verdict is not None
        assert verdict.action is Action.DENY
        assert C.GAMES in verdict.rule

    def test_allows_other_categories(self):
        assert self.make_rule().evaluate(view(host="news.example.com")) is None

    def test_composes_with_engine(self):
        engine = PolicyEngine([self.make_rule()])
        assert engine.evaluate(view(host="games.example.com")).action is Action.DENY


class TestPortRule:
    rule = PortRule([1080, 6667])

    def test_blocks_listed_port(self):
        assert self.rule.evaluate(view(port=1080)) is not None

    def test_allows_other_ports(self):
        assert self.rule.evaluate(view(port=80)) is None


class TestTimeOfDayRule:
    inner = PortRule([1080])

    def test_applies_inside_window(self):
        rule = TimeOfDayRule(self.inner, 8, 18)
        epoch = day_epoch("2011-08-03") + 10 * 3600
        assert rule.evaluate(view(port=1080, epoch=epoch)) is not None

    def test_abstains_outside_window(self):
        rule = TimeOfDayRule(self.inner, 8, 18)
        epoch = day_epoch("2011-08-03") + 3 * 3600
        assert rule.evaluate(view(port=1080, epoch=epoch)) is None

    def test_midnight_wrapping_window(self):
        rule = TimeOfDayRule(self.inner, 22, 6)
        late = day_epoch("2011-08-03") + 23 * 3600
        early = day_epoch("2011-08-03") + 2 * 3600
        midday = day_epoch("2011-08-03") + 12 * 3600
        assert rule.evaluate(view(port=1080, epoch=late)) is not None
        assert rule.evaluate(view(port=1080, epoch=early)) is not None
        assert rule.evaluate(view(port=1080, epoch=midday)) is None

    def test_inner_must_still_match(self):
        rule = TimeOfDayRule(self.inner, 0, 24)
        assert rule.evaluate(view(port=80)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeOfDayRule(self.inner, 5, 5)
        with pytest.raises(ValueError):
            TimeOfDayRule(self.inner, -1, 5)


class TestBrowserTypeRule:
    rule = BrowserTypeRule(["skype", "bittorrent"])

    def test_blocks_marked_agent(self):
        verdict = self.rule.evaluate(view(user_agent="Skype WISPr"))
        assert verdict is not None

    def test_case_insensitive(self):
        assert self.rule.evaluate(view(user_agent="BitTorrent/7.2")) is not None

    def test_allows_browsers(self):
        assert self.rule.evaluate(view(user_agent="Mozilla/5.0")) is None

    def test_abstains_without_agent(self):
        assert self.rule.evaluate(view()) is None


class TestExtensionRule:
    rule = ExtensionRule([".exe", "torrent"])

    def test_blocks_extension(self):
        assert self.rule.evaluate(view(path="/dl/setup.exe")) is not None
        assert self.rule.evaluate(view(path="/files/movie.TORRENT")) is not None

    def test_allows_other_extensions(self):
        assert self.rule.evaluate(view(path="/page.html")) is None
        assert self.rule.evaluate(view(path="/no-extension")) is None
