"""Tests for the additional SGOS rule types (policy.extensions)."""

import pytest

from repro.catalog.categories import Category as C
from repro.categorizer import TrustedSourceCategorizer
from repro.policy import Action, PolicyEngine, RequestView
from repro.policy.extensions import (
    BrowserTypeRule,
    CategoryRule,
    ExtensionRule,
    PortRule,
    TimeOfDayRule,
)
from repro.timeline import day_epoch


def view(**kw) -> RequestView:
    defaults = dict(host="example.com", path="/")
    defaults.update(kw)
    return RequestView(**defaults)


class TestCategoryRule:
    def make_rule(self):
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("games.example.com", C.GAMES)
        categorizer.add_host("news.example.com", C.GENERAL_NEWS)
        return CategoryRule([C.GAMES], categorizer.categorize)

    def test_blocks_category(self):
        verdict = self.make_rule().evaluate(view(host="games.example.com"))
        assert verdict is not None
        assert verdict.action is Action.DENY
        assert C.GAMES in verdict.rule

    def test_allows_other_categories(self):
        assert self.make_rule().evaluate(view(host="news.example.com")) is None

    def test_composes_with_engine(self):
        engine = PolicyEngine([self.make_rule()])
        assert engine.evaluate(view(host="games.example.com")).action is Action.DENY


class TestPortRule:
    rule = PortRule([1080, 6667])

    def test_blocks_listed_port(self):
        assert self.rule.evaluate(view(port=1080)) is not None

    def test_allows_other_ports(self):
        assert self.rule.evaluate(view(port=80)) is None


class TestTimeOfDayRule:
    inner = PortRule([1080])

    def test_applies_inside_window(self):
        rule = TimeOfDayRule(self.inner, 8, 18)
        epoch = day_epoch("2011-08-03") + 10 * 3600
        assert rule.evaluate(view(port=1080, epoch=epoch)) is not None

    def test_abstains_outside_window(self):
        rule = TimeOfDayRule(self.inner, 8, 18)
        epoch = day_epoch("2011-08-03") + 3 * 3600
        assert rule.evaluate(view(port=1080, epoch=epoch)) is None

    def test_midnight_wrapping_window(self):
        rule = TimeOfDayRule(self.inner, 22, 6)
        late = day_epoch("2011-08-03") + 23 * 3600
        early = day_epoch("2011-08-03") + 2 * 3600
        midday = day_epoch("2011-08-03") + 12 * 3600
        assert rule.evaluate(view(port=1080, epoch=late)) is not None
        assert rule.evaluate(view(port=1080, epoch=early)) is not None
        assert rule.evaluate(view(port=1080, epoch=midday)) is None

    def test_inner_must_still_match(self):
        rule = TimeOfDayRule(self.inner, 0, 24)
        assert rule.evaluate(view(port=80)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeOfDayRule(self.inner, 5, 5)
        with pytest.raises(ValueError):
            TimeOfDayRule(self.inner, -1, 5)


class TestBrowserTypeRule:
    rule = BrowserTypeRule(["skype", "bittorrent"])

    def test_blocks_marked_agent(self):
        verdict = self.rule.evaluate(view(user_agent="Skype WISPr"))
        assert verdict is not None

    def test_case_insensitive(self):
        assert self.rule.evaluate(view(user_agent="BitTorrent/7.2")) is not None

    def test_allows_browsers(self):
        assert self.rule.evaluate(view(user_agent="Mozilla/5.0")) is None

    def test_abstains_without_agent(self):
        assert self.rule.evaluate(view()) is None


class TestExtensionRule:
    rule = ExtensionRule([".exe", "torrent"])

    def test_blocks_extension(self):
        assert self.rule.evaluate(view(path="/dl/setup.exe")) is not None
        assert self.rule.evaluate(view(path="/files/movie.TORRENT")) is not None

    def test_allows_other_extensions(self):
        assert self.rule.evaluate(view(path="/page.html")) is None
        assert self.rule.evaluate(view(path="/no-extension")) is None


class TestBatchedPathEquivalence:
    """CategoryRule / TimeOfDayRule under column-batch execution.

    The extension rules run inside the fleet stage; ``run_batched``
    must produce exactly the scalar stream at every batch size, and
    the rules must actually fire (the curfew adds denials that the
    baseline policy does not have), with every added denial inside
    the configured window.
    """

    START_HOUR, END_HOUR = 18, 23

    @classmethod
    def _frames(cls):
        import numpy as np

        from repro.pipeline import (
            AnonymizeStage,
            FleetStage,
            FrameSink,
            Pipeline,
            RecordsSource,
        )
        from repro.proxy import ProxyFleet
        from repro.regimes import get_regime
        from repro.scenarios import streaming_curfew
        from repro.timeline import USER_SLICE_DAYS, day_span
        from repro.workload.config import small_config

        if hasattr(cls, "_cache"):
            return cls._cache
        config = small_config(2_000, seed=11)
        profile = get_regime("syria")
        generator = profile.build_workload(config)
        baseline_policy = profile.build_policy(generator)
        curfew_policy = streaming_curfew(cls.START_HOUR, cls.END_HOUR)(
            baseline_policy, generator
        )
        requests = [
            request
            for _, day_requests in generator.generate()
            for request in day_requests
        ]
        spans = [day_span(day) for day in USER_SLICE_DAYS]

        def run(policy, batch_size):
            pipeline = Pipeline(
                RecordsSource(requests),
                (
                    FleetStage(ProxyFleet(policy), np.random.default_rng(3)),
                    AnonymizeStage(spans),
                ),
            )
            sink = FrameSink()
            if batch_size is None:
                pipeline.run(sink)
            else:
                pipeline.run_batched(sink, batch_size)
            return sink.frame()

        cls._cache = (
            run(baseline_policy, None),
            run(curfew_policy, None),
            {size: run(curfew_policy, size) for size in (1, 7, 64)},
        )
        return cls._cache

    def test_batched_equals_scalar_at_every_batch_size(self):
        _, scalar, batched = self._frames()
        for size, frame in batched.items():
            assert len(frame) == len(scalar), size
            for column in (
                "sc_filter_result", "x_exception_id", "sc_status",
                "s_action", "cs_host", "epoch", "c_ip",
            ):
                assert (frame.col(column) == scalar.col(column)).all(), (
                    size, column
                )

    def test_curfew_rules_fired_only_inside_the_window(self):
        baseline, curfew, _ = self._frames()
        base_exceptions = baseline.col("x_exception_id")
        curfew_exceptions = curfew.col("x_exception_id")
        added = (curfew_exceptions == "policy_denied") & (
            base_exceptions == "-"
        )
        assert added.any()  # CategoryRule × TimeOfDayRule really ran
        hours = (curfew.col("epoch")[added] % 86_400) // 3_600
        assert ((hours >= self.START_HOUR) & (hours < self.END_HOUR)).all()
