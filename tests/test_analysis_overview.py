"""Tests for analysis.common and analysis.overview (Section 4)."""

import numpy as np
import pytest

from repro.analysis.common import (
    allowed_mask,
    censored_mask,
    denied_mask,
    domain_column,
    error_mask,
    https_mask,
    ip_host_mask,
    observed_allowed_mask,
    percent,
    proxied_mask,
)
from repro.analysis.overview import (
    dataset_inventory,
    domain_request_distribution,
    https_breakdown,
    port_distribution,
    top_domains,
    traffic_breakdown,
)
from tests.helpers import (
    allowed_row,
    censored_row,
    error_row,
    make_frame,
    proxied_row,
)


@pytest.fixture
def mixed_frame():
    return make_frame(
        [allowed_row(cs_host="www.google.com")] * 5
        + [allowed_row(cs_host="www.facebook.com")] * 3
        + [censored_row(cs_host="www.metacafe.com")] * 2
        + [censored_row(cs_host="www.facebook.com")]
        + [error_row("tcp_error", cs_host="www.google.com")] * 2
        + [error_row("internal_error")]
        + [proxied_row(cs_host="www.google.com")]
    )


class TestMasks:
    def test_partition(self, mixed_frame):
        total = len(mixed_frame)
        assert (
            int(allowed_mask(mixed_frame).sum())
            + int(denied_mask(mixed_frame).sum())
            == total
        )
        assert (
            int(censored_mask(mixed_frame).sum())
            + int(error_mask(mixed_frame).sum())
            == int(denied_mask(mixed_frame).sum())
        )

    def test_counts(self, mixed_frame):
        assert int(censored_mask(mixed_frame).sum()) == 3
        assert int(error_mask(mixed_frame).sum()) == 3
        assert int(proxied_mask(mixed_frame).sum()) == 1

    def test_observed_allowed_excludes_proxied(self, mixed_frame):
        assert int(observed_allowed_mask(mixed_frame).sum()) == 8

    def test_domain_column(self, mixed_frame):
        domains = domain_column(mixed_frame)
        assert set(domains) == {"google.com", "facebook.com", "metacafe.com",
                                "example.com"}

    def test_ip_host_mask(self):
        frame = make_frame([
            allowed_row(cs_host="1.2.3.4"),
            allowed_row(cs_host="a.com"),
        ])
        assert ip_host_mask(frame).tolist() == [True, False]

    def test_https_mask(self):
        frame = make_frame([
            allowed_row(cs_method="CONNECT", cs_uri_port=443),
            allowed_row(cs_uri_port=443),
            allowed_row(),
        ])
        assert https_mask(frame).tolist() == [True, True, False]

    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(1, 0) == 0.0


class TestTrafficBreakdown:
    def test_table3_semantics(self, mixed_frame):
        breakdown = traffic_breakdown(mixed_frame)
        assert breakdown.total == len(mixed_frame)
        assert breakdown.censored == 3
        assert breakdown.errors == 3
        assert breakdown.denied == 6
        assert breakdown.proxied == 1
        assert breakdown.allowed_pct == pytest.approx(
            100 * breakdown.allowed / breakdown.total
        )

    def test_exception_rows_sorted(self, mixed_frame):
        rows = traffic_breakdown(mixed_frame).exception_rows
        counts = [row.count for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert all(row.exception_id != "-" for row in rows)


class TestTopDomains:
    def test_table4(self, mixed_frame):
        result = top_domains(mixed_frame, n=2)
        assert result.allowed[0].domain == "google.com"
        assert result.censored[0].domain == "metacafe.com"
        assert result.censored[0].requests == 2
        assert result.censored[0].share_pct == pytest.approx(200 / 3)

    def test_domains_can_appear_on_both_sides(self, mixed_frame):
        result = top_domains(mixed_frame, n=5)
        allowed_domains = {r.domain for r in result.allowed}
        censored_domains = {r.domain for r in result.censored}
        assert "facebook.com" in allowed_domains & censored_domains


class TestPortDistribution:
    def test_fig1(self):
        frame = make_frame([
            allowed_row(cs_uri_port=80)] * 4
            + [allowed_row(cs_uri_port=443)] * 2
            + [censored_row(cs_uri_port=9001)]
        )
        result = port_distribution(frame)
        assert result.allowed[0] == (80, 4)
        assert result.censored[0] == (9001, 1)


class TestDomainRequestDistribution:
    def test_fig2_histogram(self):
        frame = make_frame(
            [allowed_row(cs_host="a.com")] * 10
            + [allowed_row(cs_host="b.com")]
            + [censored_row(cs_host="c.com")]
        )
        result = domain_request_distribution(frame)
        assert (1, 1) in result.allowed  # one domain with one request
        assert (10, 1) in result.allowed
        assert result.censored == ((1, 1),)

    def test_heavy_tail_on_scenario(self, scenario):
        result = domain_request_distribution(scenario.full)
        counts = result.per_domain_counts["allowed"]
        # most domains receive few requests, a few receive many
        assert np.median(counts) < np.mean(counts)
        assert counts.max() > 50 * np.median(counts)


class TestHttps:
    def test_breakdown(self):
        frame = make_frame([
            allowed_row(cs_method="CONNECT", cs_uri_port=443, cs_host="a.com"),
            censored_row(cs_method="CONNECT", cs_uri_port=443, cs_host="1.2.3.4"),
            allowed_row(),
        ])
        result = https_breakdown(frame)
        assert result.https_requests == 2
        assert result.censored_https == 1
        assert result.censored_to_ip == 1
        assert result.censored_to_ip_pct == 100.0


class TestInventory:
    def test_table1(self, scenario):
        rows = dataset_inventory({"Full": scenario.full, "User": scenario.user})
        by_name = {row.name: row for row in rows}
        assert by_name["Full"].requests == len(scenario.full)
        assert by_name["Full"].proxies == 7
        assert by_name["User"].proxies == 1
        assert len(by_name["Full"].days) == 9
        assert by_name["User"].days == ("2011-07-22", "2011-07-23")


class TestScenarioOverview:
    """Shape checks against the paper's Section 4 (shared scenario)."""

    def test_allowed_dominates(self, scenario):
        breakdown = traffic_breakdown(scenario.full)
        assert breakdown.allowed_pct > 90
        assert 0.5 < breakdown.censored_pct < 3.0
        assert breakdown.proxied_pct < 1.5

    def test_tcp_error_is_biggest_error(self, scenario):
        breakdown = traffic_breakdown(scenario.full)
        error_rows = [
            r for r in breakdown.exception_rows
            if r.exception_id not in ("policy_denied", "policy_redirect")
        ]
        assert error_rows[0].exception_id == "tcp_error"

    def test_top_censored_domains_match_paper(self, scenario):
        result = top_domains(scenario.full)
        top = [r.domain for r in result.censored[:6]]
        assert "facebook.com" in top
        assert "metacafe.com" in top
        assert "skype.com" in top

    def test_google_tops_allowed(self, scenario):
        result = top_domains(scenario.full)
        assert result.allowed[0].domain == "google.com"

    def test_ports_80_and_443_dominate_censored(self, scenario):
        result = port_distribution(scenario.full)
        censored_ports = [port for port, _ in result.censored[:4]]
        assert 80 in censored_ports
