"""Tests for the ASCII reporting helpers."""

from repro.reporting import format_pct, render_series, render_table
from repro.reporting.tables import render_bar_chart


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["Domain", "Requests"],
            [["facebook.com", 100], ["x.com", 2]],
            title="Top domains",
        )
        lines = text.splitlines()
        assert lines[0] == "Top domains"
        assert "Domain" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].startswith("facebook.com")
        # columns aligned: 'Requests' values start at the same offset
        offset = lines[1].index("Requests")
        assert lines[3][offset:].strip() == "100"

    def test_no_title(self):
        text = render_table(["A"], [["x"]])
        assert text.splitlines()[0] == "A"


class TestRenderSeries:
    def test_downsampling(self):
        points = [(i, float(i)) for i in range(100)]
        text = render_series(points, max_points=10)
        assert len(text.splitlines()) <= 12

    def test_empty(self):
        assert "(empty series)" in render_series([])

    def test_title(self):
        assert render_series([(1, 2)], title="T").splitlines()[0] == "T"


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert "(no data)" in render_bar_chart([])


class TestFormatPct:
    def test_format(self):
        assert format_pct(12.3456) == "12.35%"
        assert format_pct(0.5, digits=1) == "0.5%"
