"""Tests for lenient ELFF reads, page-view sessionization, workload
fidelity measurement, and markdown reporting."""

import io

import pytest

from repro.analysis.pageviews import page_view_breakdown, page_view_keys
from repro.logmodel.elff import LogFormatError, ReadStats, read_log, write_log
from repro.reporting.markdown import report_to_markdown
from repro.timeline import day_epoch
from repro.workload import TrafficGenerator
from repro.workload.config import small_config
from repro.workload.fidelity import measure_fidelity
from tests.helpers import allowed_row, censored_row, make_frame, make_record


class TestLenientElff:
    def corrupted_log(self) -> io.StringIO:
        buffer = io.StringIO()
        write_log([make_record(), make_record(cs_host="b.com")], buffer)
        buffer.write("truncated,line\n")
        buffer.write("2011-08-03,garbage," + ",".join(["x"] * 24) + "\n")
        buffer.seek(0)
        return buffer

    def test_strict_mode_raises(self):
        with pytest.raises(LogFormatError):
            list(read_log(self.corrupted_log()))

    def test_lenient_mode_skips_and_counts(self):
        stats = ReadStats()
        records = list(read_log(self.corrupted_log(), lenient=True, stats=stats))
        assert len(records) == 2
        assert stats.records == 2
        assert stats.skipped == 2
        assert stats.first_error

    def test_lenient_without_stats(self):
        records = list(read_log(self.corrupted_log(), lenient=True))
        assert len(records) == 2


class TestPageViews:
    def test_grouping(self):
        base = day_epoch("2011-07-22")
        rows = [
            allowed_row(c_ip="u1", cs_host="a.com", epoch=base + 1),
            allowed_row(c_ip="u1", cs_host="a.com", epoch=base + 3),
            allowed_row(c_ip="u1", cs_host="b.com", epoch=base + 3),
            allowed_row(c_ip="u2", cs_host="a.com", epoch=base + 3),
            censored_row(c_ip="u1", cs_host="c.com", epoch=base + 5),
        ]
        result = page_view_breakdown(make_frame(rows))
        assert result.requests == 5
        assert result.page_views == 4
        assert result.page_censored_pct == pytest.approx(25.0)
        assert result.request_censored_pct == pytest.approx(20.0)
        assert result.inflation_factor > 1.0

    def test_window_separates_views(self):
        base = day_epoch("2011-07-22")
        rows = [
            allowed_row(c_ip="u1", cs_host="a.com", epoch=base + 1),
            allowed_row(c_ip="u1", cs_host="a.com", epoch=base + 120),
        ]
        keys = page_view_keys(make_frame(rows), window_seconds=30)
        assert keys[0] != keys[1]

    def test_empty_frame(self):
        from repro.frame.io import empty_frame

        result = page_view_breakdown(empty_frame())
        assert result.page_views == 0

    def test_scenario_inflation(self, scenario):
        """The paper's claim: page-level censored share exceeds the
        request-level one (allowed pages fan out, censored don't)."""
        result = page_view_breakdown(scenario.user)
        assert result.requests_per_view > 1.0
        assert result.page_censored_pct > result.request_censored_pct


class TestFidelity:
    @pytest.fixture(scope="class")
    def report(self):
        config = small_config(25_000, seed=13)
        generator = TrafficGenerator(config)
        return measure_fidelity(config, list(generator.generate()))

    def test_total_close_to_configured(self, report):
        assert 0.9 * 25_000 < report.total_requests < 1.25 * 25_000

    def test_component_shares_within_tolerance(self, report):
        # browsing dominates and must be near its boosted target
        assert report.component_error("browsing") < 0.05
        # iphosts has no extra day modifiers: tight
        assert report.component_error("iphosts") < 0.25
        # tor carries its own day multipliers: generous bound
        assert report.component_error("tor") < 0.9

    def test_day_shares_follow_multipliers(self, report):
        friday = report.day_shares["2011-08-05"]
        wednesday = report.day_shares["2011-08-03"]
        assert friday < wednesday * 0.75

    def test_all_components_present(self, report):
        for component in ("browsing", "iphosts", "tor", "bittorrent",
                          "redirect-targets", "google-cache"):
            assert report.component_shares.get(component, 0) > 0, component


class TestMarkdownReport:
    def test_renders_full_report(self, report):
        text = report_to_markdown(report, title="Test run")
        assert text.startswith("# Test run")
        assert "## Overview" in text
        assert "## Recovered policy" in text
        assert "metacafe.com" in text
        assert "| proxy |" in text
        assert "## Circumvention" in text
        # valid markdown tables: every table line has matching pipes
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
