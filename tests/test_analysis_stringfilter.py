"""Tests for the Section 5.4 recovery algorithms — the core methodology.

These are known-answer tests: the Syrian policy that generated the
scenario is ground truth, and the recovery must re-derive it from the
logs alone.
"""

import pytest

from repro.analysis.stringfilter import (
    categorize_suspected,
    keyword_stats,
    recover_censored_domains,
    recover_censored_hosts,
    recover_keywords,
)
from repro.catalog.categories import Category as C
from repro.categorizer import TrustedSourceCategorizer
from repro.policy.syria import KEYWORDS
from tests.helpers import allowed_row, censored_row, make_frame, proxied_row


class TestDomainRecovery:
    def test_bare_request_evidence(self):
        frame = make_frame(
            [censored_row(cs_host="www.blocked.com", cs_uri_path="/")] * 3
            + [allowed_row(cs_host="www.other.com")]
        )
        recovered = recover_censored_domains(frame)
        assert [r.domain for r in recovered] == ["blocked.com"]
        assert recovered[0].censored == 3
        assert recovered[0].allowed == 0

    def test_domain_with_allowed_traffic_not_suspected(self):
        frame = make_frame([
            censored_row(cs_host="www.mixed.com", cs_uri_path="/"),
            censored_row(cs_host="www.mixed.com", cs_uri_path="/"),
            censored_row(cs_host="www.mixed.com", cs_uri_path="/"),
            allowed_row(cs_host="www.mixed.com"),
        ])
        assert recover_censored_domains(frame) == []

    def test_min_censored_threshold(self):
        frame = make_frame([censored_row(cs_host="www.rare.com")])
        assert recover_censored_domains(frame, min_censored=3) == []
        assert len(recover_censored_domains(frame, min_censored=1)) == 1

    def test_proxied_rows_do_not_count_as_allowed(self):
        frame = make_frame(
            [censored_row(cs_host="www.blocked.com", cs_uri_path="/")] * 3
            + [proxied_row(cs_host="www.blocked.com")]
        )
        recovered = recover_censored_domains(frame)
        assert recovered[0].domain == "blocked.com"
        assert recovered[0].proxied == 1

    def test_token_attribution_fallback(self):
        """A domain with no bare request is still recovered when its
        censored URLs contain only tokens present in allowed traffic
        (no keyword could explain the censorship)."""
        frame = make_frame(
            [censored_row(cs_host="media.blocked.org",
                          cs_uri_path="/images/common/banner.jpg")] * 3
            + [allowed_row(cs_host="www.other.com",
                           cs_uri_path="/images/common/banner.jpg")] * 2
        )
        assert [r.domain for r in recover_censored_domains(frame)] == [
            "blocked.org"
        ]

    def test_keyword_censored_domain_with_unique_tokens_not_recovered(self):
        """Censored requests whose URLs carry tokens never seen in
        allowed traffic could be keyword-censored — no bare evidence,
        no recovery."""
        frame = make_frame(
            [censored_row(cs_host="cdn.vendor.net",
                          cs_uri_path="/secretword/update.bin")] * 3
            + [allowed_row(cs_host="www.other.com")]
        )
        assert recover_censored_domains(frame) == []

    def test_ip_hosts_excluded(self):
        frame = make_frame(
            [censored_row(cs_host="84.229.1.1", cs_uri_path="/")] * 5
        )
        assert recover_censored_domains(frame) == []

    def test_scenario_recovers_ground_truth(self, scenario):
        """Known-answer: recovered ⊇ every blocked domain with traffic,
        and every recovered domain is genuinely never allowed."""
        recovered = {r.domain for r in recover_censored_domains(scenario.full)}
        # every sufficiently-visited blocked domain is found
        from repro.analysis.common import censored_mask, domain_column

        domains = domain_column(scenario.full)
        censored = censored_mask(scenario.full)
        for blocked in scenario.policy.blocked_domains:
            count = int(((domains == blocked) & censored).sum())
            if count >= 5:
                assert blocked in recovered, blocked

    def test_scenario_recovery_is_sound(self, scenario):
        """No recovered domain ever has an allowed request."""
        from repro.analysis.common import domain_column, observed_allowed_mask

        recovered = {r.domain for r in recover_censored_domains(scenario.full)}
        domains = domain_column(scenario.full)
        allowed = observed_allowed_mask(scenario.full)
        for domain in recovered:
            assert int(((domains == domain) & allowed).sum()) == 0


class TestHostRecovery:
    def test_blocked_host_on_allowed_domain(self):
        frame = make_frame(
            [censored_row(cs_host="messenger.live.com", cs_uri_path="/")] * 3
            + [allowed_row(cs_host="mail.live.com")] * 2
        )
        recovered = recover_censored_hosts(frame)
        assert [r.host for r in recovered] == ["messenger.live.com"]

    def test_suspected_domains_excluded(self):
        frame = make_frame(
            [censored_row(cs_host="www.metacafe.com", cs_uri_path="/")] * 3
        )
        assert recover_censored_hosts(
            frame, exclude_domains={"metacafe.com"}
        ) == []

    def test_scenario_finds_messenger_gateway(self, scenario):
        suspected = {r.domain for r in recover_censored_domains(scenario.full)}
        hosts = {
            r.host
            for r in recover_censored_hosts(
                scenario.full, exclude_domains=suspected
            )
        }
        assert "messenger.live.com" in hosts


class TestKeywordRecovery:
    def test_simple_recovery(self):
        frame = make_frame(
            [censored_row(cs_host="site.com", cs_uri_path="/a",
                          cs_uri_query=f"x=proxy&n={i}") for i in range(8)]
            + [allowed_row(cs_host="site.com", cs_uri_path="/a")] * 4
        )
        recovered = recover_keywords(frame, min_coverage=5)
        assert [k.keyword for k in recovered] == ["proxy"]
        assert recovered[0].coverage == 8

    def test_tokens_seen_in_allowed_are_not_keywords(self):
        frame = make_frame(
            [censored_row(cs_host="site.com", cs_uri_query="x=proxy&y=video")] * 8
            + [allowed_row(cs_host="site.com", cs_uri_query="y=video")] * 4
        )
        recovered = recover_keywords(frame, min_coverage=5)
        assert [k.keyword for k in recovered] == ["proxy"]

    def test_greedy_prefers_cross_host_keyword(self):
        """'proxy' explains plugin requests AND toolbar requests; the
        correlated single-host tokens ('plugins', 'channel') must not
        win, and once 'proxy' is chosen they cover nothing."""
        rows = [
            censored_row(cs_host="fb.com", cs_uri_path="/plugins/like.php",
                         cs_uri_query=f"channel=xd_proxy.php&i={i}")
            for i in range(10)
        ]
        rows += [
            censored_row(cs_host="google.com", cs_uri_path="/tbproxy/af/query")
            for _ in range(3)
        ]
        # both domains also serve allowed traffic: the keyword evidence
        # comes from the censored/allowed contrast within each domain
        rows += [allowed_row(cs_host="fb.com", cs_uri_path="/home.php")] * 2
        rows += [allowed_row(cs_host="google.com", cs_uri_path="/search")] * 2
        rows += [allowed_row(cs_host="x.com")] * 3
        recovered = recover_keywords(make_frame(rows), min_coverage=5)
        assert [k.keyword for k in recovered] == ["proxy"]

    def test_empty_censored_set(self):
        frame = make_frame([allowed_row()])
        assert recover_keywords(frame) == []

    def test_scenario_recovers_proxy_keyword(self, scenario):
        suspected = {
            r.domain
            for r in recover_censored_domains(scenario.full, min_censored=1)
        }
        hosts = {
            r.host
            for r in recover_censored_hosts(
                scenario.full, exclude_domains=suspected, min_censored=1
            )
        }
        recovered = recover_keywords(
            scenario.full, exclude_domains=suspected, exclude_hosts=hosts
        )
        keywords = [k.keyword for k in recovered]
        assert keywords  # something recovered
        assert keywords[0] == "proxy"  # the paper's dominant keyword
        # no false positives outside the policy's keyword list
        assert set(keywords) <= set(KEYWORDS)


class TestKeywordStats:
    def test_table10_counts(self):
        frame = make_frame(
            [censored_row(cs_uri_query="u=proxy")] * 3
            + [censored_row(cs_uri_path="/israel-news")]
            + [allowed_row()] * 2
            + [proxied_row(cs_uri_query="u=proxy")]
        )
        rows = keyword_stats(frame, ("proxy", "israel"))
        by_keyword = {row.keyword: row for row in rows}
        assert by_keyword["proxy"].censored == 3
        assert by_keyword["proxy"].proxied == 1
        assert by_keyword["israel"].censored == 1
        assert by_keyword["proxy"].allowed == 0

    def test_first_match_attribution(self):
        frame = make_frame([
            censored_row(cs_uri_query="u=proxy&t=israel"),
        ])
        rows = keyword_stats(frame, ("proxy", "israel"))
        by_keyword = {row.keyword: row for row in rows}
        assert by_keyword["proxy"].censored == 1
        assert by_keyword["israel"].censored == 0

    def test_scenario_keywords_never_allowed(self, scenario):
        """Ground truth: a blacklisted keyword never appears in
        OBSERVED-allowed traffic."""
        rows = keyword_stats(scenario.full, KEYWORDS)
        for row in rows:
            assert row.allowed == 0, row.keyword

    def test_scenario_proxy_dominates(self, scenario):
        rows = keyword_stats(scenario.full, KEYWORDS)
        assert rows[0].keyword == "proxy"
        # the paper: 53.6 % of censored traffic matches 'proxy'
        assert 30.0 < rows[0].censored_share_pct < 75.0


class TestTable9:
    def test_categorization(self):
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("news1.example.com", C.GENERAL_NEWS)
        categorizer.add_host("news2.example.org", C.GENERAL_NEWS)
        categorizer.add_host("shop.example.net", C.ONLINE_SHOPPING)
        frame = make_frame(
            [censored_row(cs_host="news1.example.com", cs_uri_path="/")] * 4
            + [censored_row(cs_host="news2.example.org", cs_uri_path="/")] * 3
            + [censored_row(cs_host="shop.example.net", cs_uri_path="/")] * 3
        )
        suspected = recover_censored_domains(frame)
        rows = categorize_suspected(suspected, categorizer, total_censored=10)
        assert rows[0].category == C.GENERAL_NEWS
        assert rows[0].domain_count == 2
        assert rows[0].censored_requests == 7

    def test_scenario_news_heavy(self, scenario):
        """Table 9: General News has the most suspected domains."""
        suspected = recover_censored_domains(scenario.full)
        rows = categorize_suspected(
            suspected, scenario.categorizer, total_censored=1
        )
        by_category = {row.category: row.domain_count for row in rows}
        assert by_category.get(C.GENERAL_NEWS, 0) >= 3
