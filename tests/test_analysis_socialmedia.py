"""Tests for analysis.socialmedia (Section 6, Tables 13-15)."""

import pytest

from repro.analysis.socialmedia import (
    facebook_pages,
    facebook_plugins,
    osn_breakdown,
)
from repro.catalog.socialnetworks import OSN_WATCHLIST
from tests.helpers import allowed_row, censored_row, make_frame, proxied_row


class TestTable13:
    def test_breakdown(self):
        frame = make_frame(
            [allowed_row(cs_host="www.facebook.com")] * 5
            + [censored_row(cs_host="www.facebook.com")] * 2
            + [censored_row(cs_host="badoo.com")]
            + [proxied_row(cs_host="twitter.com")]
        )
        rows = osn_breakdown(frame, top=None)
        by_network = {row.network: row for row in rows}
        assert by_network["facebook.com"].allowed == 5
        assert by_network["facebook.com"].censored == 2
        assert by_network["badoo.com"].censored == 1
        assert by_network["twitter.com"].proxied == 1
        assert by_network["myspace.com"].censored == 0

    def test_watchlist_has_28_networks(self):
        assert len(OSN_WATCHLIST) == 28

    def test_plus_google_matched_by_host(self):
        frame = make_frame([
            allowed_row(cs_host="plus.google.com"),
            allowed_row(cs_host="www.google.com"),
        ])
        rows = osn_breakdown(frame, top=None)
        by_network = {row.network: row for row in rows}
        assert by_network["plus.google.com"].allowed == 1

    def test_scenario_shape(self, scenario):
        """Section 6: facebook dominates censored OSN traffic; badoo
        and netlog are fully censored; twitter is essentially open."""
        rows = osn_breakdown(scenario.full, top=None)
        by_network = {row.network: row for row in rows}
        assert rows[0].network == "facebook.com"
        assert by_network["facebook.com"].allowed > by_network[
            "facebook.com"
        ].censored
        assert by_network["badoo.com"].allowed == 0
        assert by_network["netlog.com"].allowed == 0
        twitter = by_network["twitter.com"]
        assert twitter.allowed > twitter.censored * 20


class TestTable14:
    def test_page_outcomes(self):
        frame = make_frame([
            censored_row(cs_host="www.facebook.com",
                         cs_uri_path="/Syrian.Revolution",
                         cs_uri_query="ref=ts",
                         x_exception_id="policy_redirect",
                         cs_categories="Blocked sites; unavailable"),
            allowed_row(cs_host="www.facebook.com",
                        cs_uri_path="/Syrian.Revolution",
                        cs_uri_query="ref=ts&ajaxpipe=1"),
            allowed_row(cs_host="www.facebook.com", cs_uri_path="/home.php"),
        ])
        rows = facebook_pages(frame)
        assert len(rows) == 1
        page = rows[0]
        assert page.page == "Syrian.Revolution"
        assert page.censored == 1
        assert page.allowed == 1
        assert page.custom_category_hits == 1

    def test_case_sensitivity(self):
        frame = make_frame([
            censored_row(cs_host="www.facebook.com",
                         cs_uri_path="/Syrian.Revolution",
                         x_exception_id="policy_redirect"),
            allowed_row(cs_host="www.facebook.com",
                        cs_uri_path="/Syrian.revolution"),
        ])
        rows = facebook_pages(frame)
        pages = {row.page for row in rows}
        assert pages == {"Syrian.Revolution", "Syrian.revolution"}

    def test_app_endpoints_excluded(self):
        frame = make_frame([
            allowed_row(cs_host="www.facebook.com", cs_uri_path="/home.php"),
            allowed_row(cs_host="www.facebook.com",
                        cs_uri_path="/plugins/like.php"),
            allowed_row(cs_host="www.facebook.com", cs_uri_path="-"),
        ])
        assert facebook_pages(frame) == []

    def test_scenario_syrian_revolution_top(self, scenario):
        rows = facebook_pages(scenario.full)
        assert rows, "no page visits found"
        assert rows[0].page == "Syrian.Revolution"
        assert rows[0].censored > 0
        # the custom category fires only on censored (redirected) rows
        assert rows[0].custom_category_hits <= rows[0].censored + rows[0].proxied

    def test_scenario_allowed_pages_never_categorized(self, scenario):
        rows = facebook_pages(scenario.full)
        by_page = {row.page: row for row in rows}
        for page in ("ShaamNewsNetwork", "Syrian.Revolution.Army"):
            if page in by_page:
                assert by_page[page].censored == 0
                assert by_page[page].custom_category_hits == 0


class TestTable15:
    def test_plugin_rows(self):
        frame = make_frame(
            [censored_row(cs_host="www.facebook.com",
                          cs_uri_path="/plugins/like.php")] * 3
            + [censored_row(cs_host="www.facebook.com",
                            cs_uri_path="/extern/login_status.php")] * 2
            + [censored_row(cs_host="www.facebook.com",
                            cs_uri_path="/home.php")]
        )
        rows = facebook_plugins(frame)
        assert rows[0].element == "/plugins/like.php"
        assert rows[0].censored == 3
        # share is of censored facebook traffic (6 rows)
        assert rows[0].censored_share_pct == pytest.approx(50.0)
        elements = {row.element for row in rows}
        assert "/home.php" not in elements

    def test_scenario_like_and_login_dominate(self, scenario):
        """Table 15: like.php and login_status.php are the top two and
        jointly carry most of the censored facebook traffic."""
        rows = facebook_plugins(scenario.full)
        top_two = {rows[0].element, rows[1].element}
        assert top_two == {"/plugins/like.php", "/extern/login_status.php"}
        assert rows[0].censored_share_pct + rows[1].censored_share_pct > 55.0

    def test_scenario_plugins_never_allowed(self, scenario):
        for row in facebook_plugins(scenario.full):
            if "proxy" in row.element or row.element.startswith(
                ("/plugins/", "/extern/")
            ):
                assert row.allowed == 0
