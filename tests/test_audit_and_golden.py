"""Tests for the release-privacy audit plus golden regression checks
pinning the calibration for a fixed seed."""

import pytest

from repro.analysis.overview import top_domains, traffic_breakdown
from repro.logmodel.audit import audit_frame, audit_release
from repro.logmodel.elff import write_log
from tests.helpers import make_record


class TestAudit:
    def test_safe_release(self, tmp_path, scenario):
        """The builder's output is always anonymized."""
        findings = audit_frame(scenario.full)
        assert findings.safe
        assert findings.records == len(scenario.full)
        assert findings.hashed > 0  # the July pseudonyms
        assert findings.zeroed > 0

    def test_detects_raw_addresses(self, tmp_path):
        path = tmp_path / "leaky.log"
        write_log([
            make_record(c_ip="0.0.0.0"),
            make_record(c_ip="31.9.12.34"),  # a raw client address!
            make_record(c_ip="abcdef0123456789"),  # a pseudonym
        ], path)
        findings = audit_release(path)
        assert not findings.safe
        assert findings.raw_client_addresses == 1
        assert "31.9.12.34" in findings.leaked_addresses
        assert findings.hashed == 1
        assert "UNSAFE" in findings.summary()

    def test_summary_for_safe_file(self, tmp_path):
        path = tmp_path / "clean.log"
        write_log([make_record(c_ip="0.0.0.0")], path)
        findings = audit_release(path)
        assert "SAFE" in findings.summary()

    def test_multiple_files(self, tmp_path):
        a = tmp_path / "a.log"
        b = tmp_path / "b.log"
        write_log([make_record(c_ip="0.0.0.0")], a)
        write_log([make_record(c_ip="0.0.0.0")], b)
        assert audit_release(a, b).records == 2


class TestGoldenCalibration:
    """Regression guards: the shared scenario's headline statistics
    must stay inside the calibrated envelope.  A change that moves
    these numbers is a (possibly intentional) recalibration and must
    update this test consciously."""

    def test_headline_envelope(self, scenario):
        breakdown = traffic_breakdown(scenario.full)
        assert 92.0 < breakdown.allowed_pct < 95.0
        assert 0.9 < breakdown.censored_pct < 2.0
        assert 0.3 < breakdown.proxied_pct < 0.7
        assert 4.0 < breakdown.denied_pct < 8.0

    def test_top_censored_envelope(self, scenario):
        censored = {r.domain: r.share_pct
                    for r in top_domains(scenario.full).censored}
        assert censored.get("facebook.com", 0) > 10.0
        assert censored.get("metacafe.com", 0) > 8.0
        assert 3.0 < censored.get("skype.com", 0) < 12.0

    def test_error_mix_envelope(self, scenario):
        breakdown = traffic_breakdown(scenario.full)
        shares = {r.exception_id: r.share_pct for r in breakdown.exception_rows}
        assert 2.0 < shares.get("tcp_error", 0) < 3.6
        assert 1.4 < shares.get("internal_error", 0) < 3.0
        assert shares.get("tcp_error", 0) > shares.get("invalid_request", 1e9) or \
            shares.get("tcp_error", 0) > 2.0

    def test_dataset_ratio_envelope(self, scenario):
        summary = scenario.summary()
        assert summary["denied"] / summary["full"] < 0.10
        assert 0.035 < summary["sample"] / summary["full"] < 0.045


class TestGroupByAggregates:
    def test_mean_min_max(self):
        import numpy as np

        from repro.frame import LogFrame

        frame = LogFrame({
            "k": np.array(["a", "a", "b"], dtype=object),
            "v": np.array([1, 3, 5], dtype=np.int64),
        })
        grouped = frame.groupby("k")
        assert grouped.mean("v") == {"a": 2.0, "b": 5.0}
        assert grouped.min("v") == {"a": 1.0, "b": 5.0}
        assert grouped.max("v") == {"a": 3.0, "b": 5.0}
