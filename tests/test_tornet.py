"""Tests for the Tor substrate."""

import numpy as np

from repro.geoip import builtin_registry
from repro.tornet import TorDirectory
from tests.helpers import rng


class TestTorDirectory:
    def test_population_size(self):
        assert len(TorDirectory(100, seed=3)) == 100

    def test_deterministic_for_seed(self):
        a = TorDirectory(60, seed=5)
        b = TorDirectory(60, seed=5)
        assert [r.ip for r in a.relays] == [r.ip for r in b.relays]

    def test_different_seeds_differ(self):
        a = TorDirectory(60, seed=5)
        b = TorDirectory(60, seed=6)
        assert [r.ip for r in a.relays] != [r.ip for r in b.relays]

    def test_or_endpoints_unique(self):
        directory = TorDirectory(200, seed=1)
        assert len(directory.or_endpoints()) == 200

    def test_dir_endpoints_subset_of_relays(self):
        directory = TorDirectory(120, seed=2)
        ips = directory.relay_ips()
        for ip, _port in directory.dir_endpoints():
            assert ip in ips

    def test_relays_geolocate_outside_syria(self):
        geo = builtin_registry()
        directory = TorDirectory(80, seed=4)
        countries = {geo.lookup(r.ip) for r in directory.relays}
        assert "SY" not in countries
        assert countries <= {"US", "DE", "FR", "NL", "SE"}

    def test_or_port_9001_dominates(self):
        directory = TorDirectory(400, seed=7)
        count_9001 = sum(1 for r in directory.relays if r.or_port == 9001)
        assert count_9001 > 400 * 0.45

    def test_sample_relay_prefers_bandwidth(self):
        directory = TorDirectory(100, seed=8)
        counts = {}
        generator = rng(0)
        for _ in range(800):
            relay = directory.sample_relay(generator)
            counts[relay.nickname] = counts.get(relay.nickname, 0) + 1
        top = max(counts, key=counts.get)
        top_bandwidth = next(
            r.bandwidth for r in directory.relays if r.nickname == top
        )
        median = float(np.median([r.bandwidth for r in directory.relays]))
        assert top_bandwidth > median

    def test_sample_directory_path(self):
        directory = TorDirectory(30, seed=9)
        generator = rng(1)
        for _ in range(20):
            path = directory.sample_directory_path(generator)
            assert path.startswith("/tor/")
            assert "{fingerprint}" not in path

    def test_is_tor_endpoint(self):
        directory = TorDirectory(30, seed=10)
        relay = directory.relays[0]
        assert directory.is_tor_endpoint(relay.ip, relay.or_port)
        assert not directory.is_tor_endpoint("9.9.9.9", 9001)
