"""Tests for analysis.toranalysis (Section 7.1, Figs 8-9)."""

import numpy as np
import pytest

from repro.analysis.toranalysis import (
    identify_tor_traffic,
    proxy_censored_comparison,
    refilter_ratio,
    tor_hourly_series,
    tor_overview,
)
from repro.timeline import day_epoch
from repro.tornet import TorDirectory
from tests.helpers import allowed_row, censored_row, make_frame


@pytest.fixture(scope="module")
def directory():
    return TorDirectory(40, seed=20)


def tor_rows(directory, n_onion=3, n_http=2, censor_onion=0):
    relay = directory.relays[0]
    dir_relay = next(r for r in directory.relays if r.dir_port != 0)
    rows = []
    for i in range(n_onion):
        row = dict(
            cs_host=relay.ip,
            cs_uri_port=relay.or_port,
            cs_method="CONNECT",
            epoch=day_epoch("2011-08-03") + i * 3600,
        )
        if i < censor_onion:
            rows.append(censored_row(**row))
        else:
            rows.append(allowed_row(**row))
    for i in range(n_http):
        rows.append(allowed_row(
            cs_host=dir_relay.ip,
            cs_uri_port=dir_relay.dir_port,
            cs_uri_path="/tor/server/authority.z",
            epoch=day_epoch("2011-08-03") + i * 3600,
        ))
    return rows


class TestIdentification:
    def test_matches_relay_endpoints(self, directory):
        rows = tor_rows(directory) + [allowed_row(cs_host="www.other.com")]
        tor = identify_tor_traffic(make_frame(rows), directory)
        assert tor.total == 5
        assert int(tor.onion_mask.sum()) == 3
        assert int(tor.http_mask.sum()) == 2

    def test_relay_ip_on_wrong_port_not_matched(self, directory):
        relay = directory.relays[0]
        rows = [allowed_row(cs_host=relay.ip, cs_uri_port=1234)]
        tor = identify_tor_traffic(make_frame(rows), directory)
        assert tor.total == 0

    def test_scenario_identifies_tor(self, scenario):
        tor = identify_tor_traffic(
            scenario.full, scenario.generator.tor_directory
        )
        assert tor.total > 100
        # the paper: 73 % directory traffic
        assert 55.0 < tor.http_share_pct < 90.0


class TestOverview:
    def test_counts(self, directory):
        tor = identify_tor_traffic(
            make_frame(tor_rows(directory, censor_onion=1)), directory
        )
        overview = tor_overview(tor)
        assert overview.total_requests == 5
        assert overview.censored == 1
        assert overview.onion_censored == 1
        assert overview.http_censored == 0
        assert overview.censored_by_proxy == {"SG-42": 1}

    def test_scenario_sg44_censors_tor(self, scenario):
        """Section 7.1: a single proxy (SG-44) censors Tor; only onion
        traffic is ever censored."""
        tor = identify_tor_traffic(
            scenario.full, scenario.generator.tor_directory
        )
        overview = tor_overview(tor)
        assert overview.censored > 0
        assert set(overview.censored_by_proxy) == {"SG-44"}
        assert overview.http_censored == 0
        assert overview.onion_censored == overview.censored


class TestSeries:
    def test_hourly_series(self, directory):
        tor = identify_tor_traffic(make_frame(tor_rows(directory)), directory)
        start = day_epoch("2011-08-03")
        series = tor_hourly_series(tor, start, start + 4 * 3600)
        assert series.counts.sum() == 5
        assert series.counts[0] == 2  # one onion + one http at hour 0

    def test_proxy_comparison_normalized(self, directory):
        frame = make_frame(tor_rows(directory, censor_onion=2))
        tor = identify_tor_traffic(frame, directory)
        start = day_epoch("2011-08-03")
        series = proxy_censored_comparison(frame, tor, "SG-42", start,
                                           start + 4 * 3600)
        assert series.all_censored_pct.sum() == pytest.approx(100.0)
        assert series.tor_censored_pct.sum() == pytest.approx(100.0)


class TestRefilter:
    def test_rfilter_extremes(self, directory):
        relay_a = directory.relays[0]
        relay_b = directory.relays[1]
        base = day_epoch("2011-08-03")
        rows = [
            # hour 0: relay A censored
            censored_row(cs_host=relay_a.ip, cs_uri_port=relay_a.or_port,
                         cs_method="CONNECT", epoch=base + 100),
            # hour 1: relay A allowed again -> overlap, R_filter = 0
            allowed_row(cs_host=relay_a.ip, cs_uri_port=relay_a.or_port,
                        cs_method="CONNECT", epoch=base + 3700),
            # hour 2: only relay B allowed -> no overlap, R_filter = 1
            allowed_row(cs_host=relay_b.ip, cs_uri_port=relay_b.or_port,
                        cs_method="CONNECT", epoch=base + 7300),
        ]
        tor = identify_tor_traffic(make_frame(rows), directory)
        series = refilter_ratio(tor)
        assert series.rfilter[0] == pytest.approx(1.0)  # nothing re-allowed yet
        assert series.rfilter[1] == pytest.approx(0.0)
        assert series.rfilter[2] == pytest.approx(1.0)

    def test_empty_tor_traffic(self, directory):
        tor = identify_tor_traffic(
            make_frame([allowed_row(cs_host="a.com")]), directory
        )
        series = refilter_ratio(tor)
        assert len(series.bin_epochs) == 0

    def test_scenario_inconsistency(self, scenario):
        """Fig. 9: R_filter varies — blocking is inconsistent."""
        tor = identify_tor_traffic(
            scenario.full, scenario.generator.tor_directory
        )
        series = refilter_ratio(tor, bin_seconds=6 * 3600)
        values = series.rfilter[~np.isnan(series.rfilter)]
        assert len(values) > 12
        assert values.std() > 0.02
