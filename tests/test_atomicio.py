"""Crash-safety tests for atomic file publication (repro.atomicio).

The contract under test: a final path either holds the complete old
content or the complete new content — an interrupted write never
leaves a truncated file there, for plain text, gzip ELFF logs, the
--metrics JSON report, and the --markdown report alike.
"""

from __future__ import annotations

import gzip

import pytest

from repro.atomicio import (
    AtomicTextFile,
    atomic_write_bytes,
    atomic_write_text,
    tmp_path_for,
)
from repro.logmodel.elff import open_log_writer, read_log, write_log
from tests.helpers import make_record


class TestAtomicWrite:
    def test_writes_content_and_cleans_staging(self, tmp_path):
        target = tmp_path / "out.json"
        assert atomic_write_text(target, "hello") == target
        assert target.read_text() == "hello"
        assert not tmp_path_for(target).exists()

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_bytes(target, b"new")
        assert target.read_text() == "new"

    def test_tmp_path_is_a_sibling(self, tmp_path):
        staged = tmp_path_for(tmp_path / "deep" / "file.log")
        assert staged.name == "file.log.tmp"
        assert staged.parent == tmp_path / "deep"


class TestAtomicTextFile:
    def test_publishes_only_on_close(self, tmp_path):
        target = tmp_path / "file.txt"
        writer = AtomicTextFile(target)
        writer.write("body\n")
        writer.flush()
        assert not target.exists()  # still staged
        writer.close()
        assert target.read_text() == "body\n"
        assert not tmp_path_for(target).exists()

    def test_close_is_idempotent(self, tmp_path):
        writer = AtomicTextFile(tmp_path / "file.txt")
        writer.write("x")
        writer.close()
        writer.close()
        assert (tmp_path / "file.txt").read_text() == "x"

    def test_exception_discards_without_touching_final_path(self, tmp_path):
        target = tmp_path / "file.txt"
        target.write_text("precious")
        with pytest.raises(RuntimeError):
            with AtomicTextFile(target) as writer:
                writer.write("half a replacem")
                raise RuntimeError("interrupted")
        assert target.read_text() == "precious"
        assert not tmp_path_for(target).exists()


class TestCrashSafeLogWriter:
    """open_log_writer must never leave a partial final log file."""

    @pytest.mark.parametrize("name", ["out.log", "out.log.gz"])
    def test_midwrite_exception_leaves_no_final_file(self, tmp_path, name):
        target = tmp_path / name
        with pytest.raises(RuntimeError):
            with open_log_writer(target) as handle:
                handle.write("#Software: SGOS\n")
                handle.write("truncated,row,with,no,newl")
                raise RuntimeError("process dies here")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # tmp removed too

    @pytest.mark.parametrize("name", ["out.log", "out.log.gz"])
    def test_successful_write_round_trips(self, tmp_path, name):
        records = [make_record(cs_uri_path=f"/p{i}") for i in range(25)]
        target = tmp_path / name
        count = write_log(records, target)
        assert count == 25
        assert list(read_log(target)) == records

    def test_gzip_output_is_deterministic(self, tmp_path):
        records = [make_record(cs_uri_path=f"/p{i}") for i in range(10)]
        write_log(records, tmp_path / "a.log.gz")
        write_log(records, tmp_path / "b.log.gz")
        assert (tmp_path / "a.log.gz").read_bytes() == (
            tmp_path / "b.log.gz"
        ).read_bytes()
        with gzip.open(tmp_path / "a.log.gz", "rt") as handle:
            assert handle.readline().startswith("#Software:")


class TestAtomicReports:
    def test_metrics_report_leaves_no_staging_file(self, tmp_path):
        from repro.metrics import MetricsRegistry, write_metrics_report

        path = write_metrics_report(
            tmp_path / "metrics.json", MetricsRegistry(), command="simulate"
        )
        assert path.exists()
        assert not tmp_path_for(path).exists()

    def test_markdown_report_leaves_no_staging_file(self, tmp_path):
        from repro.cli import main

        target = tmp_path / "report.md"
        assert main([
            "report", "--requests", "4000", "--seed", "11",
            "--markdown", str(target),
        ]) == 0
        assert target.read_text().startswith("# Censorship report")
        assert not tmp_path_for(target).exists()
