"""Chaos tests: the engine under an active fault plan.

Two invariants make the resilience layer trustworthy, and this module
pins both:

* **retry transparency** — with a retry budget that covers the
  transient faults, output is byte-identical to the fault-free run at
  every worker count (retried shards replay the same record stream, so
  injection leaves no fingerprint);
* **quarantine equivalence** — with ``allow_partial=True``, the merged
  result of a faulted run equals the fault-free result restricted to
  the surviving shards (quarantined shards never merge, and the
  :class:`~repro.faults.ShardFailure` report names exactly the shards
  the plan killed).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.engine import (
    RetryPolicy,
    ShardError,
    analyze_logs,
    run_sharded,
    simulate_day_records,
    simulate_to_logs,
)
from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    ShardFailureReport,
    parse_fault_plan,
)
from repro.metrics import METRICS_SCHEMA, MetricsRegistry
from repro.workload.config import ScenarioConfig, small_config

#: Same tiny scenario as test_engine, so the cached per-process
#: scenario context is shared across the two modules.
TINY = small_config(6_000, seed=5)

#: Retry budget used throughout: enough retries, no backoff sleeps.
FAST = RetryPolicy(max_retries=2, backoff_base=0.0)

#: Every shard suffers one transient failure on its first attempt.
NOISY = FaultPlan(seed=1, rate=1.0, rate_attempts=1)


def _crash_plan(shard_id: str) -> FaultPlan:
    """A plan that permanently kills exactly one shard."""
    return FaultPlan(rules=(
        FaultRule(site="shard.start", kind="crash", shard_id=shard_id),
    ))


# -- invariant 1: retries leave no fingerprint -------------------------------

class TestRetryTransparency:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_day_records_identical_to_fault_free(self, workers):
        clean = simulate_day_records(TINY, workers=1)
        noisy = simulate_day_records(
            TINY, workers=workers, retry=FAST, fault_plan=NOISY
        )
        assert noisy == clean

    @pytest.mark.chaos
    @pytest.mark.parametrize("workers", [1, 2])
    def test_log_bytes_identical_to_fault_free(self, tmp_path, workers):
        simulate_to_logs(TINY, tmp_path / "clean", compress=True)
        simulate_to_logs(
            TINY, tmp_path / f"noisy-{workers}", compress=True,
            workers=workers, retry=FAST, fault_plan=NOISY,
        )
        assert (
            tmp_path / f"noisy-{workers}" / "proxies.log.gz"
        ).read_bytes() == (tmp_path / "clean" / "proxies.log.gz").read_bytes()

    def test_explicit_transient_rule_heals_within_budget(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", fail_attempts=2),
        ))
        clean = simulate_day_records(TINY, workers=1)
        assert simulate_day_records(
            TINY, workers=1, retry=FAST, fault_plan=plan
        ) == clean

    def test_deep_site_faults_recover_in_analyze(self, tmp_path):
        """Transient faults at the reader sites (inside the shard, not
        at its entry) are retried with the same result."""
        paths = [
            path for path, _ in
            simulate_to_logs(TINY, tmp_path, per_day=True)
        ]
        clean = analyze_logs(paths, workers=1)
        for site in ("elff.source", "gzip.open", "elff.read"):
            noisy = analyze_logs(
                paths, workers=1, retry=FAST,
                fault_plan=FaultPlan(seed=2, rate=1.0, rate_site=site),
            )
            assert noisy == clean, site

    def test_retry_counter_counts_the_injections(self):
        metrics = MetricsRegistry()
        simulate_day_records(
            TINY, workers=1, retry=FAST, fault_plan=NOISY,
            metrics=metrics,
        )
        assert metrics.counters["engine.shard_retries"] == len(TINY.days)
        assert "engine.shards.quarantined" not in metrics.counters


# -- invariant 2: quarantine equals the surviving-shard run ------------------

class TestQuarantineEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_killed_day_is_absent_and_rest_identical(self, workers):
        clean = simulate_day_records(TINY, workers=1)
        victim = TINY.days[1]
        failures = ShardFailureReport()
        partial = simulate_day_records(
            TINY, workers=workers, retry=FAST,
            fault_plan=_crash_plan(f"day:{victim}"),
            allow_partial=True, failures=failures,
        )
        expected = {
            day: records for day, records in clean.items()
            if day != victim
        }
        assert partial == expected
        assert failures.shard_ids() == [f"day:{victim}"]

    def test_failure_record_names_site_attempts_and_error(self):
        victim = TINY.days[0]
        failures = ShardFailureReport()
        simulate_day_records(
            TINY, workers=1, retry=FAST,
            fault_plan=_crash_plan(f"day:{victim}"),
            allow_partial=True, failures=failures,
        )
        (failure,) = failures
        assert failure.shard_id == f"day:{victim}"
        assert failure.site == "shard.start"
        assert failure.attempts == FAST.max_retries + 1
        assert "InjectedCrash" in failure.error

    def test_analyze_quarantine_equals_survivor_run(self, tmp_path):
        paths = [
            path for path, _ in
            simulate_to_logs(TINY, tmp_path, per_day=True)
        ]
        victim = paths[1]
        failures = ShardFailureReport()
        partial = analyze_logs(
            paths, workers=1, retry=FAST,
            fault_plan=_crash_plan(f"log:{victim.name}"),
            allow_partial=True, failures=failures,
        )
        survivors = analyze_logs(
            [path for path in paths if path != victim], workers=1
        )
        assert partial == survivors
        assert failures.shard_ids() == [f"log:{victim.name}"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_strict_mode_still_raises_shard_error(self, workers):
        victim = TINY.days[1]
        with pytest.raises(ShardError) as excinfo:
            simulate_day_records(
                TINY, workers=workers, retry=FAST,
                fault_plan=_crash_plan(f"day:{victim}"),
            )
        assert excinfo.value.shard_id == f"day:{victim}"
        assert isinstance(excinfo.value.error, InjectedCrash)

    def test_transient_outlasting_budget_is_quarantined(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", shard_id="day:" + TINY.days[0],
                      fail_attempts=99),
        ))
        failures = ShardFailureReport()
        partial = simulate_day_records(
            TINY, workers=1,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            fault_plan=plan, allow_partial=True, failures=failures,
        )
        assert TINY.days[0] not in partial
        (failure,) = failures
        assert failure.attempts == 2

    def test_metrics_carries_the_failures(self):
        metrics = MetricsRegistry()
        simulate_day_records(
            TINY, workers=1, retry=FAST,
            fault_plan=_crash_plan(f"day:{TINY.days[2]}"),
            allow_partial=True, metrics=metrics,
        )
        assert metrics.counters["engine.shards.quarantined"] == 1
        assert [f.shard_id for f in metrics.failures] == [
            f"day:{TINY.days[2]}"
        ]
        assert metrics.to_dict()["failures"][0]["site"] == "shard.start"


# -- timeouts ----------------------------------------------------------------

def _sleepy(seconds):
    import time
    time.sleep(seconds)
    return seconds


@pytest.mark.chaos
class TestShardTimeouts:
    def test_slow_shard_times_out_and_recovers_on_retry(self):
        """A slow fault on the first attempt trips the per-shard
        timeout; the retried attempt runs clean and the result is
        fault-free."""
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", kind="slow", shard_id="shard-1",
                      delay_seconds=5.0, fail_attempts=1),
        ))
        results = run_sharded(
            _sleepy, [0.01, 0.01], workers=2,
            retry=RetryPolicy(
                max_retries=1, backoff_base=0.0, timeout=1.0
            ),
            fault_plan=plan,
        )
        assert results == [0.01, 0.01]

    def test_persistently_slow_shard_is_quarantined(self):
        plan = FaultPlan(rules=(
            FaultRule(site="shard.start", kind="slow", shard_id="shard-1",
                      delay_seconds=5.0, fail_attempts=99),
        ))
        failures = ShardFailureReport()
        results = run_sharded(
            _sleepy, [0.01, 0.01], workers=2,
            retry=RetryPolicy(
                max_retries=0, backoff_base=0.0, timeout=0.5
            ),
            fault_plan=plan, strict=False, failures=failures,
        )
        assert results == [0.01, None]
        (failure,) = failures
        assert failure.shard_id == "shard-1"
        assert failure.site == "timeout"


# -- the CLI under REPRO_FAULT_PLAN ------------------------------------------

class TestCliChaos:
    @pytest.mark.chaos
    def test_simulate_byte_identical_under_env_plan(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert main([
            "simulate", "--requests", "20000", "--out",
            str(tmp_path / "clean"),
        ]) == 0
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=1,rate=1.0")
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", "2")
        assert main([
            "simulate", "--requests", "20000", "--out",
            str(tmp_path / "noisy"), "--workers", "2",
            "--metrics", str(tmp_path / "metrics.json"),
        ]) == 0
        assert (tmp_path / "noisy" / "proxies.log").read_bytes() == (
            tmp_path / "clean" / "proxies.log"
        ).read_bytes()
        document = json.loads((tmp_path / "metrics.json").read_text())
        assert document["schema"] == METRICS_SCHEMA
        assert document["counters"]["engine.shard_retries"] >= 1
        assert document["failures"] == []
        assert document["totals"]["quarantined_shards"] == 0

    def test_allow_partial_reports_quarantined_days(
        self, tmp_path, monkeypatch, capsys
    ):
        """End-to-end partial mode: the env plan permanently kills a
        deterministic subset of days; the CLI succeeds, lists them on
        stdout, and the metrics JSON carries the failure records."""
        spec = "seed=5,rate=0.5,attempts=99"
        config = ScenarioConfig(total_requests=20_000, seed=2011)
        plan = parse_fault_plan(spec)
        doomed = [
            f"day:{day}" for day in config.days
            if plan.roll("shard.start", f"day:{day}") < plan.rate
        ]
        assert 0 < len(doomed) < len(config.days)  # test is meaningful
        monkeypatch.setenv("REPRO_FAULT_PLAN", spec)
        assert main([
            "simulate", "--requests", "20000", "--out", str(tmp_path),
            "--max-shard-retries", "0", "--allow-partial",
            "--metrics", str(tmp_path / "metrics.json"),
        ]) == 0
        out = capsys.readouterr().out
        for shard_id in doomed:
            assert f"quarantined {shard_id}" in out
        document = json.loads((tmp_path / "metrics.json").read_text())
        assert [f["shard_id"] for f in document["failures"]] == doomed
        assert document["totals"]["quarantined_shards"] == len(doomed)
        assert (tmp_path / "proxies.log").exists()

    def test_strict_cli_fails_on_unrecoverable_fault(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=5,rate=0.5,attempts=99")
        with pytest.raises(ShardError):
            main([
                "simulate", "--requests", "20000",
                "--out", str(tmp_path), "--max-shard-retries", "0",
            ])


# -- the batched path under the same fault plans -----------------------------

class TestBatchedChaosEquivalence:
    """Column-batch execution must be invisible to the resilience
    layer: under any fault plan, a batched run lands byte- and
    state-identical to the scalar run under the same plan."""

    @pytest.mark.chaos
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batched_log_bytes_identical_under_faults(
        self, tmp_path, workers
    ):
        simulate_to_logs(TINY, tmp_path / "clean")
        simulate_to_logs(
            TINY, tmp_path / "noisy", workers=workers,
            retry=FAST, fault_plan=NOISY, batch_size=64,
        )
        assert (tmp_path / "noisy" / "proxies.log").read_bytes() == (
            tmp_path / "clean" / "proxies.log"
        ).read_bytes()

    def test_batched_analyze_quarantine_equals_scalar(self, tmp_path):
        paths = [
            path for path, _ in
            simulate_to_logs(TINY, tmp_path, per_day=True)
        ]
        plan = _crash_plan(f"log:{paths[1].name}")
        scalar_failures = ShardFailureReport()
        scalar = analyze_logs(
            paths, workers=1, retry=FAST, fault_plan=plan,
            allow_partial=True, failures=scalar_failures,
        )
        batched_failures = ShardFailureReport()
        batched = analyze_logs(
            paths, workers=1, retry=FAST, fault_plan=plan,
            allow_partial=True, failures=batched_failures,
            batch_size=64,
        )
        assert batched == scalar
        assert batched_failures.shard_ids() == scalar_failures.shard_ids()

    @pytest.mark.chaos
    def test_cli_env_plan_with_batch_size_byte_identical(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert main([
            "simulate", "--requests", "20000", "--out",
            str(tmp_path / "clean"),
        ]) == 0
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=1,rate=1.0")
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", "2")
        assert main([
            "simulate", "--requests", "20000", "--out",
            str(tmp_path / "noisy"), "--workers", "2",
            "--batch-size", "64",
        ]) == 0
        assert (tmp_path / "noisy" / "proxies.log").read_bytes() == (
            tmp_path / "clean" / "proxies.log"
        ).read_bytes()

    @pytest.mark.chaos
    def test_interrupted_scalar_run_resumes_batched(
        self, tmp_path, monkeypatch
    ):
        """A run killed mid-way in scalar mode resumes in batched mode
        against the same ledger, and the stitched output is identical
        to an uninterrupted fault-free scalar run."""
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert main([
            "simulate", "--requests", "20000", "--out",
            str(tmp_path / "clean"),
        ]) == 0
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=5,rate=0.5,attempts=99")
        with pytest.raises(ShardError):
            main([
                "simulate", "--requests", "20000", "--out",
                str(tmp_path / "dead"), "--max-shard-retries", "0",
                "--checkpoint-dir", str(tmp_path / "ledger"),
            ])
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert main([
            "simulate", "--requests", "20000", "--out",
            str(tmp_path / "resumed"), "--batch-size", "64",
            "--checkpoint-dir", str(tmp_path / "ledger"), "--resume",
        ]) == 0
        assert (tmp_path / "resumed" / "proxies.log").read_bytes() == (
            tmp_path / "clean" / "proxies.log"
        ).read_bytes()


# -- lazy sources: faults and open errors fire at read time ------------------

class TestLazyElffSource:
    """``ElffSource`` must not fire its fault site — or surface
    file-open errors — at iterator construction.  Sources are cheap
    descriptions the service pre-builds long before draining them, so
    both belong to the first ``next()``, inside whatever fault context
    and error handling surround the actual read."""

    PLAN = FaultPlan(seed=3, rate=1.0, rate_site="elff.source")

    def _log(self, tmp_path):
        from repro.logmodel.elff import write_log
        from tests.helpers import make_record

        path = tmp_path / "lazy.log"
        write_log([make_record()], path)
        return path

    def test_scalar_fault_fires_at_first_next(self, tmp_path):
        from repro.faults import InjectedFault, use_fault_plan
        from repro.pipeline import ElffSource

        path = self._log(tmp_path)
        with use_fault_plan(self.PLAN, shard_id="log:lazy.log"):
            iterator = iter(ElffSource(path))  # no fault yet
            with pytest.raises(InjectedFault):
                next(iterator)

    def test_batched_fault_fires_at_first_next(self, tmp_path):
        from repro.faults import InjectedFault, use_fault_plan
        from repro.pipeline import ElffSource

        path = self._log(tmp_path)
        with use_fault_plan(self.PLAN, shard_id="log:lazy.log"):
            batches = ElffSource(path).iter_batches(8)  # no fault yet
            with pytest.raises(InjectedFault):
                next(batches)

    def test_missing_file_errors_at_first_next(self, tmp_path):
        from repro.pipeline import ElffSource

        source = ElffSource(tmp_path / "not-yet-written.log")
        iterator = iter(source)  # constructing and iter() both fine
        batches = source.iter_batches(8)
        with pytest.raises(FileNotFoundError):
            next(iterator)
        with pytest.raises(FileNotFoundError):
            next(batches)


# -- regime profiles under the same fault plans ------------------------------

class TestRegimeChaosParity:
    """The resilience layer is regime-agnostic: the Pakistani profile
    heals transient faults and resumes exactly like the Syrian one."""

    PK = dataclasses.replace(TINY, regime="pakistan")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_pakistan_day_records_identical_under_faults(self, workers):
        clean = simulate_day_records(self.PK, workers=1)
        noisy = simulate_day_records(
            self.PK, workers=workers, retry=FAST, fault_plan=NOISY
        )
        assert noisy == clean

    @pytest.mark.chaos
    def test_pakistan_cli_byte_identical_under_env_plan(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert main([
            "simulate", "--requests", "6000", "--seed", "5",
            "--regime", "pakistan", "--out", str(tmp_path / "clean"),
        ]) == 0
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=1,rate=1.0")
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", "2")
        assert main([
            "simulate", "--requests", "6000", "--seed", "5",
            "--regime", "pakistan", "--out", str(tmp_path / "noisy"),
            "--workers", "2", "--batch-size", "64",
        ]) == 0
        assert (tmp_path / "noisy" / "proxies.log").read_bytes() == (
            tmp_path / "clean" / "proxies.log"
        ).read_bytes()

    def test_pakistan_quarantine_names_the_killed_day(self):
        victim = self.PK.days[1]
        failures = ShardFailureReport()
        partial = simulate_day_records(
            self.PK, workers=1, retry=FAST,
            fault_plan=_crash_plan(f"day:{victim}"),
            allow_partial=True, failures=failures,
        )
        assert victim not in partial
        assert failures.shard_ids() == [f"day:{victim}"]
