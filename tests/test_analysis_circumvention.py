"""Tests for analysis.anonymizers (7.2), analysis.p2p (7.3) and
analysis.googlecache (7.4)."""

import pytest

from repro.analysis.anonymizers import anonymizer_analysis
from repro.analysis.googlecache import (
    CACHE_HOST,
    cache_targets,
    google_cache_analysis,
)
from repro.analysis.p2p import bittorrent_analysis
from repro.bittorrent import TitleDatabase, TorrentCatalog
from repro.catalog.categories import Category as C
from repro.categorizer import TrustedSourceCategorizer
from tests.helpers import allowed_row, censored_row, make_frame


class TestAnonymizers:
    def make_categorizer(self):
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("clean.vpn.example", C.ANONYMIZER)
        categorizer.add_host("mixed.vpn.example", C.ANONYMIZER)
        categorizer.add_host("www.normal.com", C.PORTAL_SITES)
        return categorizer

    def test_fig10_statistics(self):
        frame = make_frame(
            [allowed_row(cs_host="clean.vpn.example")] * 4
            + [allowed_row(cs_host="mixed.vpn.example")] * 6
            + [censored_row(cs_host="mixed.vpn.example")] * 2
            + [allowed_row(cs_host="www.normal.com")] * 8
        )
        result = anonymizer_analysis(frame, self.make_categorizer())
        assert result.hosts == 2
        assert result.requests == 12
        assert result.never_filtered_hosts == 1
        assert result.partially_filtered_hosts == 1
        assert result.ratio_cdf == ((3.0, 1.0),)  # 6 allowed / 2 censored
        assert result.majority_allowed_pct == 100.0

    def test_no_anonymizers(self):
        frame = make_frame([allowed_row(cs_host="www.normal.com")])
        categorizer = TrustedSourceCategorizer()
        categorizer.add_host("www.normal.com", C.PORTAL_SITES)
        result = anonymizer_analysis(frame, categorizer)
        assert result.hosts == 0
        assert result.requests == 0

    def test_scenario_shape(self, scenario):
        """Section 7.2: most anonymizer hosts are never filtered, and
        among the filtered ones outcomes are mixed."""
        result = anonymizer_analysis(scenario.full, scenario.categorizer)
        assert result.hosts > 50
        assert result.never_filtered_hosts_pct > 40.0
        assert result.partially_filtered_hosts > 5
        assert 0.1 < result.requests_share_pct < 1.5


class TestBitTorrent:
    def make_inputs(self):
        catalog = TorrentCatalog(50, seed=33)
        titledb = TitleDatabase(catalog, resolve_rate=1.0)
        content = catalog.contents[0]
        rows = [
            allowed_row(
                cs_host="tracker.openbittorrent.com",
                cs_uri_path="/announce",
                cs_uri_query=(
                    f"info_hash={content.info_hash}&peer_id=-UT2210-000000000001"
                    "&port=6881&left=100"
                ),
            ),
            allowed_row(
                cs_host="tracker.publicbt.com",
                cs_uri_path="/announce",
                cs_uri_query=(
                    f"info_hash={content.info_hash}&peer_id=-UT2210-000000000002"
                    "&port=6881&left=100"
                ),
            ),
            censored_row(
                cs_host="tracker-proxy.furk.net",
                cs_uri_path="/announce",
                cs_uri_query=(
                    f"info_hash={content.info_hash}&peer_id=-UT2210-000000000001"
                    "&port=6881&left=100"
                ),
            ),
            allowed_row(cs_host="www.other.com"),
        ]
        return make_frame(rows), titledb

    def test_counts(self):
        frame, titledb = self.make_inputs()
        result = bittorrent_analysis(frame, titledb)
        assert result.announce_requests == 3
        assert result.censored_announces == 1
        assert result.unique_users == 2
        assert result.unique_contents == 1
        assert result.censored_tracker_hosts == ("tracker-proxy.furk.net",)

    def test_scenario_shape(self, scenario):
        """Section 7.3: announces are nearly all allowed; the only
        censored tracker carries 'proxy' in its name; circumvention
        and IM software is shared over BitTorrent."""
        titledb = TitleDatabase(scenario.generator.torrent_catalog)
        result = bittorrent_analysis(scenario.full, titledb)
        assert result.announce_requests > 100
        assert result.allowed_share_pct > 97.0
        assert set(result.censored_tracker_hosts) <= {"tracker-proxy.furk.net"}
        assert 65.0 < result.resolve_rate_pct < 90.0
        assert result.circumvention_announces > 0
        assert result.im_software_announces > 0
        assert result.unique_users > 20


class TestGoogleCache:
    def test_targets_parsed(self):
        frame = make_frame([
            allowed_row(
                cs_host=CACHE_HOST,
                cs_uri_path="/search",
                cs_uri_query="q=cache:AbC123:www.panet.co.il/online/articles/1",
            ),
        ])
        assert cache_targets(frame) == ["www.panet.co.il"]

    def test_censored_content_detected(self):
        frame = make_frame([
            allowed_row(
                cs_host=CACHE_HOST,
                cs_uri_path="/search",
                cs_uri_query="q=cache:AbC:aawsat.com/details.asp",
            ),
            allowed_row(
                cs_host=CACHE_HOST,
                cs_uri_path="/search",
                cs_uri_query="q=cache:AbC:www.harmless.com/page",
            ),
            censored_row(
                cs_host=CACHE_HOST,
                cs_uri_path="/search",
                cs_uri_query="q=cache:AbC:www.israel-site.com/page",
            ),
        ])
        result = google_cache_analysis(frame, {"aawsat.com"})
        assert result.requests == 3
        assert result.allowed == 2
        assert result.censored == 1
        assert result.censored_content_fetches == 1
        assert result.censored_targets == ("aawsat.com",)

    def test_scenario_cache_bypasses_censorship(self, scenario):
        """Section 7.4: cache fetches of otherwise-censored pages are
        almost all allowed."""
        from repro.analysis.stringfilter import recover_censored_domains

        suspected = {
            r.domain for r in recover_censored_domains(scenario.full)
        }
        result = google_cache_analysis(
            scenario.full, suspected | {"panet.co.il", "free-syria.com"}
        )
        assert result.requests > 20
        assert result.allowed > result.censored * 10
        assert result.censored_content_fetches > 0
