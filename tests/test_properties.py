"""Cross-cutting property-based tests (hypothesis).

These target invariants of the core machinery rather than individual
functions: policy determinism and soundness, log-format robustness,
frame algebra, classification totality.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.streaming import StreamingAnalysis
from repro.frame import LogFrame, concat
from repro.logmodel.classify import TrafficClass, classify_exception
from repro.logmodel.record import LogRecord
from repro.policy import (
    DomainBlacklistRule,
    KeywordRule,
    PolicyEngine,
    RequestView,
)
from repro.policy.rules import Action
from tests.helpers import make_record

# -- strategies -------------------------------------------------------------

host_strategy = st.from_regex(r"[a-z]{1,8}(\.[a-z]{2,6}){1,2}", fullmatch=True)
path_strategy = st.from_regex(r"(/[a-zA-Z0-9_.-]{0,12}){0,4}", fullmatch=True)
query_strategy = st.from_regex(r"([a-z]{1,6}=[a-zA-Z0-9]{0,8}(&)?){0,3}",
                               fullmatch=True)
text_strategy = st.text(
    alphabet=st.characters(codec="utf-8",
                           exclude_categories=("Cs", "Cc")),
    max_size=40,
)


def request_views():
    return st.builds(
        RequestView,
        host=host_strategy,
        path=path_strategy,
        query=query_strategy,
        port=st.integers(1, 65535),
        method=st.sampled_from(["GET", "POST", "CONNECT"]),
        epoch=st.integers(1_300_000_000, 1_320_000_000),
    )


# -- policy invariants --------------------------------------------------------

class TestPolicyProperties:
    @given(request_views())
    def test_engine_is_deterministic(self, view):
        engine = PolicyEngine([
            KeywordRule(["proxy", "israel"]),
            DomainBlacklistRule(["metacafe.com"], suffixes=[".il"]),
        ])
        first = engine.evaluate(view)
        second = engine.evaluate(view)
        assert first == second

    @given(request_views())
    def test_keyword_rule_soundness(self, view):
        """The rule fires iff the keyword is a substring of the
        matchable text — no more, no less."""
        rule = KeywordRule(["proxy"])
        verdict = rule.evaluate(view)
        contains = "proxy" in view.matchable_text()
        assert (verdict is not None) == contains

    @given(request_views())
    def test_allow_verdict_has_no_exception(self, view):
        engine = PolicyEngine([KeywordRule(["zzzznevermatches"])])
        verdict = engine.evaluate(view)
        assert verdict.action is Action.ALLOW
        assert verdict.exception_id == "-"

    @given(request_views(), st.permutations(["a", "b", "c"]))
    def test_disjoint_rules_commute(self, view, order):
        """Rules that can never both match give order-independent
        verdicts."""
        rules = {
            "a": KeywordRule(["proxy"]),
            "b": DomainBlacklistRule(["metacafe.com"]),
            "c": KeywordRule(["israel"]),
        }
        # make matches disjoint by construction: only evaluate when at
        # most one rule matches
        matching = [k for k, rule in rules.items()
                    if rule.evaluate(view) is not None]
        if len(matching) > 1:
            return
        engine = PolicyEngine([rules[k] for k in order])
        baseline = PolicyEngine([rules[k] for k in ("a", "b", "c")])
        assert engine.evaluate(view).exception_id == baseline.evaluate(
            view
        ).exception_id


# -- log format robustness -----------------------------------------------------

class TestRecordProperties:
    @settings(max_examples=60)
    @given(
        host=text_strategy.filter(lambda s: "\r" not in s and "\n" not in s),
        path=text_strategy.filter(lambda s: "\r" not in s and "\n" not in s),
        query=text_strategy.filter(lambda s: "\r" not in s and "\n" not in s),
        agent=text_strategy.filter(lambda s: "\r" not in s and "\n" not in s),
    )
    def test_row_roundtrip_arbitrary_content(self, host, path, query, agent):
        """Commas, quotes and unicode in fields survive the CSV layer."""
        record = make_record(
            cs_host=host, cs_uri_path=path, cs_uri_query=query,
            cs_user_agent=agent,
        )
        assert LogRecord.from_row(record.to_row()) == record

    @given(st.sampled_from([
        "-", "policy_denied", "policy_redirect", "tcp_error",
        "internal_error", "dns_server_failure", "something_new",
    ]))
    def test_classification_is_total(self, exception_id):
        assert classify_exception(exception_id) in TrafficClass


# -- frame algebra ---------------------------------------------------------------

class TestFrameProperties:
    @given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 9)),
                    min_size=1, max_size=40))
    def test_mask_partition(self, pairs):
        """A mask and its complement partition the frame."""
        frame = LogFrame({
            "k": np.array([k for k, _ in pairs], dtype=object),
            "v": np.array([v for _, v in pairs], dtype=np.int64),
        })
        mask = frame["v"] > 4
        assert len(frame.where(mask)) + len(frame.where(~mask)) == len(frame)

    @given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 9)),
                    min_size=1, max_size=30))
    def test_concat_preserves_counts(self, pairs):
        frame = LogFrame({
            "k": np.array([k for k, _ in pairs], dtype=object),
            "v": np.array([v for _, v in pairs], dtype=np.int64),
        })
        doubled = concat([frame, frame])
        assert len(doubled) == 2 * len(frame)
        for key, count in frame.value_counts("k"):
            assert dict(doubled.value_counts("k"))[key] == 2 * count

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=50),
        st.floats(0.0, 1.0),
    )
    def test_sample_size(self, values, fraction):
        frame = LogFrame({"v": np.array(values, dtype=np.int64)})
        sampled = frame.sample(fraction, np.random.default_rng(0))
        assert len(sampled) == round(len(frame) * fraction)

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=50))
    def test_value_counts_sum(self, keys):
        frame = LogFrame({"k": np.array(keys, dtype=object)})
        assert sum(c for _, c in frame.value_counts("k")) == len(keys)


# -- accumulator merge laws ---------------------------------------------------

def log_records():
    """Generated LogRecords covering every classification branch."""
    return st.builds(
        make_record,
        cs_host=st.sampled_from([
            "www.a.com", "b.com", "sub.c.org", "d.net", "www.e.co.uk",
        ]),
        sc_filter_result=st.sampled_from(["OBSERVED", "DENIED", "PROXIED"]),
        x_exception_id=st.sampled_from([
            "-", "policy_denied", "policy_redirect", "tcp_error",
            "internal_error", "dns_server_failure",
        ]),
        epoch=st.integers(1_311_292_800, 1_312_675_200),  # the leak's span
    )


def record_batches(max_size: int = 25):
    return st.lists(log_records(), max_size=max_size)


def _consume(batch):
    return StreamingAnalysis().consume(batch)


class TestMergeLawProperties:
    """The algebra the sharded map-reduce relies on: merge is an
    associative, commutative monoid operation whose unit is the empty
    accumulator, and it agrees with single-pass consumption on every
    split of a record stream."""

    @settings(max_examples=60)
    @given(record_batches(), record_batches())
    def test_merge_is_commutative(self, a, b):
        assert _consume(a) + _consume(b) == _consume(b) + _consume(a)

    @settings(max_examples=60)
    @given(record_batches(), record_batches(), record_batches())
    def test_merge_is_associative(self, a, b, c):
        left = (_consume(a) + _consume(b)) + _consume(c)
        right = _consume(a) + (_consume(b) + _consume(c))
        assert left == right

    @settings(max_examples=60)
    @given(record_batches())
    def test_empty_accumulator_is_identity(self, batch):
        acc = _consume(batch)
        assert StreamingAnalysis() + acc == acc
        assert acc + StreamingAnalysis() == acc

    @settings(max_examples=60)
    @given(record_batches(max_size=40), st.integers(0, 40))
    def test_merge_agrees_with_single_pass(self, batch, cut):
        """Splitting a stream at an arbitrary point and merging the
        halves equals consuming the stream once."""
        cut = min(cut, len(batch))
        merged = _consume(batch[:cut]).merge(_consume(batch[cut:]))
        assert merged == _consume(batch)

    @settings(max_examples=30)
    @given(st.lists(record_batches(max_size=10), max_size=6))
    def test_merge_all_equals_concatenation(self, batches):
        merged = StreamingAnalysis.merge_all(_consume(b) for b in batches)
        flat = [record for batch in batches for record in batch]
        assert merged == _consume(flat)
