"""Tests for the columnar engine (repro.frame)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.frame import (
    LogFrame,
    concat,
    frame_from_records,
    read_frame_csv,
    write_frame_csv,
)
from repro.frame.io import empty_frame
from tests.helpers import make_frame, make_record, rng


def small_frame() -> LogFrame:
    return LogFrame({
        "k": np.array(["a", "b", "a", "c", "b", "a"], dtype=object),
        "v": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
    })


class TestLogFrame:
    def test_length_and_columns(self):
        frame = small_frame()
        assert len(frame) == 6
        assert set(frame.column_names) == {"k", "v"}
        assert "k" in frame and "missing" not in frame

    def test_rejects_unequal_columns(self):
        with pytest.raises(ValueError):
            LogFrame({
                "a": np.array([1, 2]),
                "b": np.array([1]),
            })

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError):
            LogFrame({})

    def test_unknown_column_raises_keyerror(self):
        with pytest.raises(KeyError):
            small_frame().col("nope")

    def test_boolean_mask(self):
        frame = small_frame()
        sub = frame.where(frame["v"] > 3)
        assert len(sub) == 3
        assert sub["v"].tolist() == [4, 5, 6]

    def test_mask_length_mismatch(self):
        with pytest.raises(ValueError):
            small_frame().where(np.array([True]))

    def test_integer_indices(self):
        sub = small_frame().take(np.array([0, 5]))
        assert sub["k"].tolist() == ["a", "a"]

    def test_select_and_drop(self):
        frame = small_frame()
        assert frame.select(["v"]).column_names == ["v"]
        assert frame.drop("v").column_names == ["k"]

    def test_with_column(self):
        frame = small_frame().with_column("w", [0] * 6)
        assert frame["w"].tolist() == [0] * 6
        with pytest.raises(ValueError):
            small_frame().with_column("w", [1, 2])

    def test_head_and_sort(self):
        frame = small_frame().sort_values("v", descending=True)
        assert frame.head(2)["v"].tolist() == [6, 5]

    def test_value_counts_sorted_desc_then_by_value(self):
        assert small_frame().value_counts("k") == [("a", 3), ("b", 2), ("c", 1)]

    def test_nunique(self):
        assert small_frame().nunique("k") == 3

    def test_sample_fraction(self):
        frame = small_frame()
        assert len(frame.sample(0.5, rng())) == 3
        assert len(frame.sample(0.0, rng())) == 0
        with pytest.raises(ValueError):
            frame.sample(1.5, rng())

    def test_sample_without_replacement(self):
        frame = small_frame()
        sub = frame.sample(1.0, rng())
        assert sorted(sub["v"].tolist()) == [1, 2, 3, 4, 5, 6]

    def test_iter_rows_and_row(self):
        rows = list(small_frame().iter_rows())
        assert rows[0] == {"k": "a", "v": 1}
        assert small_frame().row(3) == {"k": "c", "v": 4}

    def test_repr(self):
        assert "6 rows" in repr(small_frame())


class TestConcat:
    def test_concat(self):
        combined = concat([small_frame(), small_frame()])
        assert len(combined) == 12

    def test_concat_rejects_mismatched_columns(self):
        other = LogFrame({"k": np.array(["x"], dtype=object)})
        with pytest.raises(ValueError):
            concat([small_frame(), other])

    def test_concat_rejects_empty_list(self):
        with pytest.raises(ValueError):
            concat([])


class TestGroupBy:
    def test_count(self):
        assert small_frame().groupby("k").count() == {"a": 3, "b": 2, "c": 1}

    def test_sum(self):
        assert small_frame().groupby("k").sum("v") == {
            "a": 10.0, "b": 7.0, "c": 4.0,
        }

    def test_count_where(self):
        frame = small_frame()
        mask = frame["v"] > 2
        assert frame.groupby("k").count_where(mask) == {"a": 2, "b": 1, "c": 1}
        with pytest.raises(ValueError):
            frame.groupby("k").count_where(np.array([True]))

    def test_nunique(self):
        frame = LogFrame({
            "k": np.array(["a", "a", "b", "b"], dtype=object),
            "v": np.array(["x", "x", "x", "y"], dtype=object),
        })
        assert frame.groupby("k").nunique("v") == {"a": 1, "b": 2}

    def test_top(self):
        assert small_frame().groupby("k").top(2) == [("a", 3), ("b", 2)]

    def test_indices_and_frames(self):
        groups = small_frame().groupby("k")
        indices = groups.indices()
        assert indices["a"].tolist() == [0, 2, 5]
        frames = groups.frames()
        assert frames["b"]["v"].tolist() == [2, 5]

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers(0, 100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_groupby_matches_bruteforce(self, pairs):
        keys = np.array([k for k, _ in pairs], dtype=object)
        values = np.array([v for _, v in pairs], dtype=np.int64)
        frame = LogFrame({"k": keys, "v": values})
        grouped = frame.groupby("k")
        expected_counts = {}
        expected_sums = {}
        for k, v in pairs:
            expected_counts[k] = expected_counts.get(k, 0) + 1
            expected_sums[k] = expected_sums.get(k, 0) + v
        assert grouped.count() == expected_counts
        assert grouped.sum("v") == {k: float(v) for k, v in expected_sums.items()}


class TestIO:
    def test_frame_from_records(self):
        records = [make_record(cs_host=f"h{i}.com") for i in range(5)]
        frame = frame_from_records(records)
        assert len(frame) == 5
        assert frame["cs_host"].tolist() == [f"h{i}.com" for i in range(5)]

    def test_frame_from_no_records(self):
        frame = frame_from_records([])
        assert len(frame) == 0
        assert "cs_host" in frame

    def test_empty_frame_has_standard_columns(self):
        frame = empty_frame()
        assert "x_exception_id" in frame and len(frame) == 0

    def test_csv_roundtrip(self, tmp_path):
        frame = make_frame([
            dict(cs_host="a.com"),
            dict(cs_host="b.com", x_exception_id="policy_denied"),
        ])
        path = tmp_path / "frame.csv"
        write_frame_csv(frame, path)
        restored = read_frame_csv(path)
        assert len(restored) == 2
        assert restored["cs_host"].tolist() == frame["cs_host"].tolist()
        assert restored["epoch"].dtype == frame["epoch"].dtype

    def test_read_empty_csv_raises(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_frame_csv(path)

    def test_ragged_row_raises_with_file_and_line(self, tmp_path):
        """Rows with fewer cells than the header used to be silently
        zip-truncated into misaligned columns."""
        path = tmp_path / "ragged.csv"
        path.write_text("epoch,cs_host,sc_status\n"
                        "1,a.com,200\n"
                        "2,b.com\n")
        with pytest.raises(ValueError, match=r"line 3.*expected 3.*got 2"):
            read_frame_csv(path)
        assert "ragged.csv" in str(pytest.raises(
            ValueError, read_frame_csv, path
        ).value)

    def test_extra_cells_also_raise(self, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("epoch,cs_host\n1,a.com,extra\n")
        with pytest.raises(ValueError, match="line 2"):
            read_frame_csv(path)

    def test_non_numeric_cell_raises_with_file_and_line(self, tmp_path):
        """A non-numeric cell in an int column used to die with a bare
        numpy ValueError that named neither file nor line."""
        path = tmp_path / "bad.csv"
        path.write_text("epoch,cs_host\n"
                        "100,a.com\n"
                        "oops,b.com\n"
                        "300,c.com\n")
        with pytest.raises(ValueError, match=r"bad\.csv.*line 3.*'epoch'"):
            read_frame_csv(path)
