"""Tests for the PROXIED-inconsistency analysis (Section 3.3)."""

import pytest

from repro.analysis.consistency import (
    proxied_consistency,
    proxied_consistency_by_domain,
)
from tests.helpers import allowed_row, censored_row, make_frame, proxied_row


class TestUrlLevel:
    def test_contradictory_cached_row(self):
        """A clean PROXIED row whose URL is otherwise always censored —
        the stale-decision case the paper flags."""
        frame = make_frame([
            censored_row(cs_host="www.metacafe.com", cs_uri_path="/"),
            censored_row(cs_host="www.metacafe.com", cs_uri_path="/"),
            proxied_row(cs_host="www.metacafe.com", cs_uri_path="/"),
        ])
        result = proxied_consistency(frame)
        assert result.clean_proxied_rows == 1
        assert result.contradictory == 1
        assert result.inconsistency_found

    def test_consistent_cached_row(self):
        frame = make_frame([
            allowed_row(cs_host="www.google.com", cs_uri_path="/"),
            proxied_row(cs_host="www.google.com", cs_uri_path="/"),
        ])
        result = proxied_consistency(frame)
        assert result.consistent == 1
        assert not result.inconsistency_found

    def test_undetermined_without_siblings(self):
        frame = make_frame([
            proxied_row(cs_host="www.only-cached.com", cs_uri_path="/x"),
            allowed_row(cs_host="www.other.com"),
        ])
        result = proxied_consistency(frame)
        assert result.undetermined == 1

    def test_proxied_with_exception_not_counted_clean(self):
        frame = make_frame([
            proxied_row(cs_host="a.com", x_exception_id="policy_denied"),
        ])
        result = proxied_consistency(frame)
        assert result.proxied_rows == 1
        assert result.clean_proxied_rows == 0

    def test_no_proxied_rows(self):
        result = proxied_consistency(make_frame([allowed_row()]))
        assert result.proxied_rows == 0
        assert result.contradictory_pct == 0.0


class TestDomainLevel:
    def test_blocked_domain_cached_rows_contradict(self):
        frame = make_frame(
            [censored_row(cs_host="www.metacafe.com",
                          cs_uri_path=f"/watch/{i}/") for i in range(4)]
            + [proxied_row(cs_host="www.metacafe.com",
                           cs_uri_path="/watch/99/")]
        )
        result = proxied_consistency_by_domain(frame)
        assert result.contradictory == 1

    def test_scenario_reproduces_the_papers_observation(self, scenario):
        """The simulated logs contain the same quirk the paper reports:
        clean PROXIED rows on domains that are otherwise consistently
        denied (metacafe et al.)."""
        result = proxied_consistency_by_domain(scenario.full)
        assert result.clean_proxied_rows > 0
        assert result.inconsistency_found
        # and a majority of cached rows are ordinary allowed traffic
        assert result.consistent > result.contradictory
