"""Differential suite: column-batch execution equals record-at-a-time.

The batched hot path (``repro.frame.RecordBatch`` + ``process_batch``
+ the chunked ELFF reader) is only trustworthy because it is provably
identical to the scalar reference path.  This module pins that claim
from four directions:

* **analysis state** — ``StreamingAnalysis`` folded from batches equals
  the record-at-a-time fold, including Counter *insertion order* (the
  ``most_common`` tie-break that decides CLI output bytes) and native
  key types;
* **ELFF bytes** — the chunked reader recovers exactly the scalar
  reader's record stream (quoting, escapes, malformed rows, corrupted
  streams and all), and batches re-serialize to the original bytes;
* **engine output** — ``simulate``/``analyze`` with ``--batch-size``
  are byte-identical to scalar runs at every worker count;
* **CLI** — stdout and the ``--metrics`` JSON (modulo timers) do not
  depend on the execution mode.

Batch sizes deliberately cover the degenerate (1), the awkward prime
(7), the typical (64) and the larger-than-stream (10_000) cases.
"""

from __future__ import annotations

import copy
import csv
import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.streaming import StreamingAnalysis
from repro.cli import main
from repro.engine import analyze_logs, simulate_to_logs
from repro.frame.batch import RecordBatch
from repro.logmodel.elff import (
    LogFormatError,
    ReadStats,
    elff_header,
    read_log,
    read_log_batches,
    write_log,
)
from repro.pipeline import (
    AnonymizeStage,
    CountSink,
    ElffSink,
    FrameSink,
    Pipeline,
    RecordListSink,
    StreamingAnalysisSink,
    TeeSink,
)
from repro.timeline import USER_SLICE_DAYS, day_epoch, day_span
from repro.workload.config import small_config
from tests.helpers import make_record

BATCH_SIZES = (1, 7, 64, 10_000)
WORKER_COUNTS = (1, 2, 4)

#: Same tiny scenario as test_engine/test_chaos_engine, so the cached
#: per-process scenario context is shared across modules.
TINY = small_config(6_000, seed=5)

#: User agents chosen to exercise every ELFF quoting shape: unquoted,
#: comma-bearing (csv wraps the field in quotes), embedded quote
#: characters (doubled on the wire), and an embedded newline (the
#: quoted field spans physical lines).
_AGENTS = (
    "-",
    "curl/7.19.7",
    "Mozilla/5.0 (Windows NT 6.1, WOW64) AppleWebKit/534.50",
    'He said "hi", twice',
    "multi\nline agent",
)

log_records = st.builds(
    make_record,
    cs_host=st.sampled_from(
        ["www.a.com", "b.com", "SUB.C.org", "d.net.", "e.com.sy"]
    ),
    s_ip=st.sampled_from(["82.137.200.42", "82.137.200.49"]),
    sc_filter_result=st.sampled_from(["OBSERVED", "DENIED", "PROXIED"]),
    x_exception_id=st.sampled_from(
        ["-", "policy_denied", "policy_redirect", "tcp_error"]
    ),
    cs_user_agent=st.sampled_from(_AGENTS),
    epoch=st.integers(
        day_epoch("2011-07-22"), day_epoch("2011-08-05") + 86_399
    ),
)
record_streams = st.lists(log_records, max_size=60)
batch_sizes = st.sampled_from(BATCH_SIZES)


# -- analysis state ----------------------------------------------------------


class TestAnalysisEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(records=record_streams, batch_size=batch_sizes)
    def test_fold_state_identical(self, records, batch_size):
        scalar = StreamingAnalysis().consume(records)
        batched = StreamingAnalysis().consume_batches(
            RecordBatch.from_records(records).split(batch_size)
        )
        assert batched == scalar

    @settings(max_examples=30, deadline=None)
    @given(records=record_streams, batch_size=batch_sizes)
    def test_counter_insertion_order_and_key_types(
        self, records, batch_size
    ):
        """``most_common`` breaks ties by insertion order, so batched
        counters must insert new keys exactly where the scalar fold
        would — and carry native Python keys, never numpy scalars."""
        scalar = StreamingAnalysis().consume(records)
        batched = StreamingAnalysis().consume_batches(
            RecordBatch.from_records(records).split(batch_size)
        )
        for attr in (
            "exceptions",
            "allowed_domains",
            "censored_domains",
            "day_volumes",
        ):
            ours, reference = getattr(batched, attr), getattr(scalar, attr)
            assert list(ours) == list(reference)
            assert {type(key) for key in ours} == {
                type(key) for key in reference
            }
            assert all(type(key) in (str, int) for key in ours)
        assert batched.top_allowed(5) == scalar.top_allowed(5)
        assert batched.top_censored(5) == scalar.top_censored(5)

    @settings(max_examples=20, deadline=None)
    @given(records=record_streams, batch_size=batch_sizes)
    def test_pipeline_run_batched_equals_run(self, records, batch_size):
        """A full stage chain into every sink type, both modes.

        The scalar anonymize stage mutates records in place, so each
        mode gets its own copies of the stream.
        """
        spans = [day_span(day) for day in USER_SLICE_DAYS]

        def tee() -> TeeSink:
            return TeeSink([
                CountSink(), RecordListSink(), StreamingAnalysisSink(),
                FrameSink(), ElffSink(),
            ])

        scalar = Pipeline(
            [copy.copy(record) for record in records],
            (AnonymizeStage(spans),),
        ).run(tee())
        batched = Pipeline(
            [copy.copy(record) for record in records],
            (AnonymizeStage(spans),),
        ).run_batched(tee(), batch_size)
        assert batched == scalar


# -- ELFF bytes --------------------------------------------------------------


class TestElffEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(records=record_streams, batch_size=batch_sizes)
    def test_reread_and_reserialize_round_trip(self, records, batch_size):
        buffer = io.StringIO()
        write_log(records, buffer)
        text = buffer.getvalue()

        scalar_stats = ReadStats()
        scalar = list(
            read_log(io.StringIO(text), lenient=True, stats=scalar_stats)
        )
        batch_stats = ReadStats()
        batches = list(read_log_batches(
            io.StringIO(text), batch_size, lenient=True, stats=batch_stats
        ))

        recovered = [
            record for batch in batches for record in batch.iter_records()
        ]
        assert recovered == scalar == records
        assert all(len(batch) <= batch_size for batch in batches)
        assert (batch_stats.records, batch_stats.skipped) == (
            scalar_stats.records, scalar_stats.skipped
        )

        out = io.StringIO()
        out.write(elff_header())
        writer = csv.writer(out)
        for batch in batches:
            writer.writerows(batch.to_rows())
        assert out.getvalue() == text

    # One line per quoting shape the chunked reader's fast parser
    # dispatches on; scalar csv semantics are the reference for all.
    _SPECIAL_LINES = pytest.mark.parametrize("middle", [
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,"UA, with commas",1,2,-,-,82.137.200.42',
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,"say ""hi"" again",1,2,-,-,82.137.200.42',
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,"/a,b",,,"two, quoted",1,2,-,-,82.137.200.42',
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,"line one\nline two",1,2,-,-,82.137.200.42',
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,ab"cd,1,2,-,-,82.137.200.42',
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,"tail junk" x,1,2,-,-,82.137.200.42',
        '2011-07-23,10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,nul\x00byte,1,2,-,-,82.137.200.42',
        '"2011-07-23",10:00:00,5,u,-,-,-,OBSERVED,x,-,200,HIT,GET,t,http,'
        'h.com,80,/,,,leading,1,2,-,-,82.137.200.42',
    ])

    @_SPECIAL_LINES
    def test_quoting_shapes_match_scalar(self, middle):
        plain = make_record().to_row()
        text = (
            elff_header()
            + ",".join(plain) + "\r\n"
            + middle + "\r\n"
            + ",".join(plain) + "\r\n"
        )
        for batch_size in BATCH_SIZES:
            scalar_stats, batch_stats = ReadStats(), ReadStats()
            scalar = list(
                read_log(io.StringIO(text), lenient=True, stats=scalar_stats)
            )
            batched = [
                record
                for batch in read_log_batches(
                    io.StringIO(text), batch_size,
                    lenient=True, stats=batch_stats,
                )
                for record in batch.iter_records()
            ]
            assert batched == scalar
            assert (
                batch_stats.records,
                batch_stats.skipped,
                batch_stats.first_error,
            ) == (
                scalar_stats.records,
                scalar_stats.skipped,
                scalar_stats.first_error,
            )

    def test_malformed_rows_lenient_and_strict(self):
        good = ",".join(make_record().to_row())
        text = elff_header() + "\r\n".join([
            good,
            "too,short",
            good.replace("OBSERVED", "OBSERVED") + ",extra",
            good.replace(",80,", ",eighty,"),
            good.replace("10:00:00", "25:99:00", 1),
            good.replace("2011-08-03", "2011-13-03", 1),
            good,
        ]) + "\r\n"

        scalar_stats, batch_stats = ReadStats(), ReadStats()
        scalar = list(
            read_log(io.StringIO(text), lenient=True, stats=scalar_stats)
        )
        batched = [
            record
            for batch in read_log_batches(
                io.StringIO(text), 3, lenient=True, stats=batch_stats
            )
            for record in batch.iter_records()
        ]
        assert batched == scalar
        assert batch_stats.skipped == scalar_stats.skipped > 0
        assert batch_stats.first_error == scalar_stats.first_error

        with pytest.raises(LogFormatError) as scalar_error:
            list(read_log(io.StringIO(text)))
        with pytest.raises(LogFormatError) as batch_error:
            list(read_log_batches(io.StringIO(text), 3))
        assert str(batch_error.value) == str(scalar_error.value)

    def test_interior_cr_splits_rows_identically(self, tmp_path):
        """A bare CR inside an unquoted field acts as a row terminator
        at the IO/csv layer, splitting the line into two short rows.
        Both readers must skip the same two malformed halves — this is
        malformed-row territory, not stream corruption."""
        good = ",".join(make_record().to_row())
        split = good.replace(",GET,", ",G\rET,")
        path = tmp_path / "interior-cr.log"
        path.write_text(
            elff_header() + good + "\r\n" + good + "\r\n" + split + "\r\n",
            newline="",
        )

        scalar_stats, batch_stats = ReadStats(), ReadStats()
        scalar = list(read_log(path, lenient=True, stats=scalar_stats))
        batched = [
            record
            for batch in read_log_batches(
                path, 64, lenient=True, stats=batch_stats
            )
            for record in batch.iter_records()
        ]
        assert batched == scalar and len(scalar) == 2
        assert batch_stats.skipped == scalar_stats.skipped == 2
        assert batch_stats.corrupted == scalar_stats.corrupted == 0
        assert batch_stats.first_error == scalar_stats.first_error

        with pytest.raises(LogFormatError) as batch_err:
            list(read_log_batches(path, 64))
        with pytest.raises(LogFormatError) as scalar_err:
            list(read_log(path))
        assert str(batch_err.value) == str(scalar_err.value)

    def test_corrupted_stream_path_mode(self, tmp_path):
        """A gzip member cut off mid-stream dies at the decompression
        layer: both readers keep the decodable prefix, count the file
        into ``ReadStats.corrupted``, and report the same error."""
        records = [
            make_record(cs_host=f"host-{index}.example.com")
            for index in range(300)
        ]
        whole = tmp_path / "whole.log.gz"
        write_log(records, whole)
        path = tmp_path / "truncated.log.gz"
        payload = whole.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])

        scalar_stats, batch_stats = ReadStats(), ReadStats()
        scalar = list(read_log(path, lenient=True, stats=scalar_stats))
        batched = [
            record
            for batch in read_log_batches(
                path, 64, lenient=True, stats=batch_stats
            )
            for record in batch.iter_records()
        ]
        assert batched == scalar and 0 < len(scalar) < len(records)
        assert batch_stats.records == scalar_stats.records
        assert batch_stats.corrupted == scalar_stats.corrupted == 1
        assert batch_stats.first_error == scalar_stats.first_error

        with pytest.raises(LogFormatError, match="corrupted log stream"):
            list(read_log_batches(path, 64))


# -- engine output -----------------------------------------------------------


@pytest.fixture(scope="module")
def scalar_log_bytes(tmp_path_factory):
    out = tmp_path_factory.mktemp("scalar-logs")
    simulate_to_logs(TINY, out, workers=1)
    return (out / "proxies.log").read_bytes()


@pytest.fixture(scope="module")
def log_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("day-logs")
    simulate_to_logs(TINY, out, per_day=True, workers=2)
    return out


class TestEngineEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_simulate_log_bytes_per_batch_size(
        self, tmp_path, scalar_log_bytes, batch_size
    ):
        simulate_to_logs(TINY, tmp_path, workers=2, batch_size=batch_size)
        assert (tmp_path / "proxies.log").read_bytes() == scalar_log_bytes

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_simulate_log_bytes_per_worker_count(
        self, tmp_path, scalar_log_bytes, workers
    ):
        simulate_to_logs(TINY, tmp_path, workers=workers, batch_size=64)
        assert (tmp_path / "proxies.log").read_bytes() == scalar_log_bytes

    def test_analyze_logs_state_and_counter_order(self, log_dir):
        paths = sorted(log_dir.glob("*.log"))
        scalar, scalar_stats = analyze_logs(paths, workers=1)
        for batch_size, workers in (
            (1, 2), (7, 1), (64, 4), (10_000, 2)
        ):
            batched, batch_stats = analyze_logs(
                paths, workers=workers, batch_size=batch_size
            )
            assert batched == scalar
            assert list(batched.allowed_domains) == list(
                scalar.allowed_domains
            )
            assert list(batched.censored_domains) == list(
                scalar.censored_domains
            )
            assert (
                batch_stats.records,
                batch_stats.skipped,
                batch_stats.corrupted,
            ) == (
                scalar_stats.records,
                scalar_stats.skipped,
                scalar_stats.corrupted,
            )


# -- CLI ---------------------------------------------------------------------


def _strip_metrics_line(output: str) -> str:
    return "\n".join(
        line for line in output.splitlines()
        if not line.startswith("metrics report ->")
    )


class TestCliEquivalence:
    def _run(self, capsys, argv: list[str]) -> str:
        assert main(argv) == 0
        return _strip_metrics_line(capsys.readouterr().out)

    def test_streaming_stdout_and_metrics_modulo_timers(
        self, log_dir, tmp_path, capsys
    ):
        logs = [str(path) for path in sorted(log_dir.glob("*.log"))]
        scalar_out = self._run(capsys, [
            "analyze", "--streaming", "--workers", "2",
            "--metrics", str(tmp_path / "scalar.json"), *logs,
        ])
        batched_out = self._run(capsys, [
            "analyze", "--streaming", "--workers", "2",
            "--batch-size", "64",
            "--metrics", str(tmp_path / "batched.json"), *logs,
        ])
        assert batched_out == scalar_out

        scalar = json.loads((tmp_path / "scalar.json").read_text())
        batched = json.loads((tmp_path / "batched.json").read_text())
        assert batched["counters"] == scalar["counters"]
        assert batched["gauges"] == scalar["gauges"]
        assert batched["timers"].keys() == scalar["timers"].keys()
        for name, timer in batched["timers"].items():
            assert timer["count"] == scalar["timers"][name]["count"]
        assert [
            (shard["shard_id"], shard["records"])
            for shard in batched["shards"]
        ] == [
            (shard["shard_id"], shard["records"])
            for shard in scalar["shards"]
        ]
        assert batched["failures"] == scalar["failures"]

    def test_frame_report_stdout(self, log_dir, capsys):
        logs = [str(path) for path in sorted(log_dir.glob("*.log"))]
        scalar_out = self._run(
            capsys, ["analyze", "--workers", "2", *logs]
        )
        batched_out = self._run(
            capsys,
            ["analyze", "--workers", "2", "--batch-size", "7", *logs],
        )
        assert batched_out == scalar_out
