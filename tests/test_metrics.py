"""Tests for the observability layer (repro.metrics).

The registry is the engine's metrics monoid: the property tests pin
the merge laws (associativity, identity, commutativity of counters and
timers, and merge-equals-single-registry), and the unit tests cover the
recording API, pickling (registries travel from workers to the
parent), the activation switch, and the JSON/Markdown exports.
"""

from __future__ import annotations

import json
import pickle
import threading

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    ShardMetrics,
    TimerStats,
    current_registry,
    metrics_report,
    metrics_to_markdown,
    set_registry,
    use_registry,
    write_metrics_report,
)

names = st.sampled_from(["a", "b", "c", "fleet.requests", "cache.hits"])

#: Dyadic rationals: float addition over them is exact (no rounding),
#: so the associativity law can be asserted with == rather than approx.
exact_seconds = st.integers(0, 102_400).map(lambda n: n / 1024)


@st.composite
def registries(draw) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, amount in draw(
        st.lists(st.tuples(names, st.integers(1, 1000)), max_size=5)
    ):
        registry.inc(name, amount)
    for name, value in draw(
        st.lists(st.tuples(names, st.floats(0, 1e6)), max_size=3)
    ):
        registry.set_gauge(name, value)
    for name, seconds in draw(
        st.lists(st.tuples(names, exact_seconds), max_size=4)
    ):
        registry.observe(name, seconds)
    for index in range(draw(st.integers(0, 3))):
        registry.add_shard(ShardMetrics(
            shard_id=f"day:{index}",
            records=draw(st.integers(0, 1000)),
            wall_seconds=draw(st.floats(0, 10)),
            worker_pid=draw(st.integers(1, 99999)),
        ))
    return registry


# -- recording ---------------------------------------------------------------

class TestRecording:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("x")
        registry.inc("x", 4)
        assert registry.counters["x"] == 5

    def test_gauges_keep_latest(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", 2.5)
        assert registry.gauges["g"] == 2.5

    def test_observe_accumulates_spans(self):
        registry = MetricsRegistry()
        registry.observe("t", 1.0)
        registry.observe("t", 3.0)
        stats = registry.timers["t"]
        assert stats.count == 2
        assert stats.total_seconds == pytest.approx(4.0)
        assert stats.mean_seconds == pytest.approx(2.0)

    def test_timer_context_manager_measures_monotonic_time(self):
        registry = MetricsRegistry()
        with registry.timer("span"):
            pass
        stats = registry.timers["span"]
        assert stats.count == 1
        assert stats.total_seconds >= 0.0

    def test_timer_records_even_when_body_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("span"):
                raise RuntimeError("boom")
        assert registry.timers["span"].count == 1

    def test_empty_timer_mean_is_zero(self):
        assert TimerStats().mean_seconds == 0.0

    def test_shard_throughput(self):
        shard = ShardMetrics("day:x", records=500, wall_seconds=2.0,
                             worker_pid=1)
        assert shard.records_per_sec == pytest.approx(250.0)
        assert ShardMetrics("day:y", 10, 0.0, 1).records_per_sec == 0.0

    def test_thread_safe_counters(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counters["n"] == 8000


# -- the merge monoid --------------------------------------------------------

class TestMergeLaws:
    @given(registries(), registries(), registries())
    def test_associative(self, a, b, c):
        assert (a.copy() + b) + c == a + (b + c)

    @given(registries())
    def test_identity(self, a):
        empty = MetricsRegistry()
        assert a + empty == a
        assert empty + a == a

    @given(registries(), registries())
    def test_counters_and_timers_commute(self, a, b):
        left, right = a + b, b + a
        assert left.counters == right.counters
        assert left.timers == right.timers

    @given(registries(), registries())
    def test_merge_adds_counters_elementwise(self, a, b):
        merged = a + b
        for name in set(a.counters) | set(b.counters):
            assert merged.counters[name] == (
                a.counters[name] + b.counters[name]
            )

    @given(registries(), registries())
    def test_merge_concatenates_shards(self, a, b):
        assert (a + b).shards == a.shards + b.shards

    @given(registries())
    def test_copy_is_independent(self, a):
        duplicate = a.copy()
        assert duplicate == a
        duplicate.inc("poke")
        assert duplicate != a

    def test_iadd_merges_in_place(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x")
        b.inc("x", 2)
        a += b
        assert a.counters["x"] == 3

    @given(registries())
    def test_pickle_roundtrip(self, a):
        restored = pickle.loads(pickle.dumps(a))
        assert restored == a
        restored.inc("still.usable")  # the lock was re-created
        assert restored.counters["still.usable"] == 1


# -- the activation switch ---------------------------------------------------

class TestActiveRegistry:
    def test_disabled_by_default(self):
        assert current_registry() is None

    def test_use_registry_activates_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert current_registry() is registry
        assert current_registry() is None

    def test_nesting_restores_the_outer_registry(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert current_registry() is inner
            assert current_registry() is outer

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert current_registry() is None

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        assert set_registry(registry) is None
        assert set_registry(None) is registry


# -- export ------------------------------------------------------------------

class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.inc("fleet.requests", 100)
        registry.set_gauge("load", 0.5)
        registry.observe("analysis.consume_seconds", 2.0)
        registry.add_shard(ShardMetrics("day:2011-08-03", 100, 2.0, 77))
        return registry

    def test_report_document_shape(self):
        document = metrics_report(
            self._populated(), command="simulate", workers=4,
            wall_seconds=3.0,
        )
        assert document["schema"] == METRICS_SCHEMA
        assert document["command"] == "simulate"
        assert document["workers"] == 4
        assert document["totals"] == {
            "shards": 1,
            "records": 100,
            "shard_wall_seconds": 2.0,
            "records_per_sec": 50.0,
            "quarantined_shards": 0,
            "resumed_shards": 0,
        }
        assert document["counters"]["fleet.requests"] == 100
        assert document["timers"]["analysis.consume_seconds"]["count"] == 1
        assert document["shards"][0]["shard_id"] == "day:2011-08-03"

    def test_report_is_json_serializable_and_ordered(self):
        registry = self._populated()
        registry.inc("a.first")
        text = json.dumps(metrics_report(registry))
        assert json.loads(text)["counters"] == {
            "a.first": 1, "fleet.requests": 100,
        }

    def test_write_metrics_report(self, tmp_path):
        path = write_metrics_report(
            tmp_path / "sub" / "metrics.json", self._populated(),
            command="analyze", workers=2,
        )
        document = json.loads(path.read_text())
        assert document["schema"] == METRICS_SCHEMA
        assert document["totals"]["records"] == 100

    def test_markdown_section(self):
        text = metrics_to_markdown(self._populated())
        assert text.startswith("## Pipeline metrics")
        assert "fleet.requests" in text
        assert "day:2011-08-03" in text
        assert "records/s" in text

    def test_markdown_of_empty_registry(self):
        text = metrics_to_markdown(MetricsRegistry())
        assert text.startswith("## Pipeline metrics")
        assert "0 shards" in text


class TestDeltaSnapshots:
    """snapshot()/delta_since(): the per-window view a long-running
    process needs, layered on the monotonic counters without touching
    the batch JSON schema."""

    def test_delta_reports_only_growth(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        registry.inc("b", 2)
        mark = registry.snapshot()
        registry.inc("a", 3)
        registry.inc("c", 7)
        delta = registry.delta_since(mark)
        assert delta.counters == {"a": 3, "c": 7}
        assert delta.count("a") == 3
        assert delta.count("b") == 0  # unmoved counters are absent

    def test_delta_since_none_is_the_total(self):
        registry = MetricsRegistry()
        registry.inc("a", 4)
        delta = registry.delta_since(None)
        assert delta.counters == {"a": 4}
        assert delta.seconds == 0.0
        assert delta.rate("a") == 0.0  # no window, no rate

    def test_timer_deltas_diff_counts_and_totals(self):
        registry = MetricsRegistry()
        registry.observe("t", 1.0)
        mark = registry.snapshot()
        registry.observe("t", 0.5)
        registry.observe("t", 0.25)
        delta = registry.delta_since(mark)
        assert delta.timers["t"].count == 2
        assert delta.timers["t"].total_seconds == pytest.approx(0.75)

    def test_window_seconds_and_rate(self):
        import time as time_module

        registry = MetricsRegistry()
        mark = registry.snapshot()
        time_module.sleep(0.01)
        registry.inc("lines", 100)
        delta = registry.delta_since(mark)
        assert delta.seconds > 0.0
        assert delta.rate("lines") == pytest.approx(100 / delta.seconds)

    def test_snapshot_is_immutable_mark(self):
        registry = MetricsRegistry()
        registry.inc("a")
        mark = registry.snapshot()
        registry.inc("a", 9)
        # the mark still reflects the moment it was taken
        assert mark.counters == {"a": 1}
        assert registry.delta_since(mark).counters == {"a": 9}

    def test_delta_to_dict_is_deterministic_and_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("b", 2)
        registry.inc("a", 1)
        registry.observe("t", 0.5)
        delta = registry.delta_since(None)
        document = delta.to_dict()
        assert list(document["counters"]) == ["a", "b"]
        json.dumps(document)  # must serialize cleanly

    def test_batch_schema_unchanged(self):
        """The --metrics JSON document still reports monotonic totals
        under schema repro.metrics/3 — deltas are a separate view."""
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.snapshot()
        document = metrics_report(registry, command="analyze", workers=1)
        assert document["schema"] == "repro.metrics/3"
        assert document["counters"] == {"a": 2}
        assert "rates" not in document
