"""Tests for the durable run ledger and checkpoint/resume
(repro.runstate + run_sharded(checkpoint=...) + the CLI surface).

The load-bearing invariants:

* a resumed run produces byte-identical output to an uninterrupted
  one, at every worker count, including after a real SIGKILL;
* resumed shards are provably *not* re-executed (pinned by resuming
  under a fault plan that would kill any dispatched shard, and by the
  ``engine.shards.resumed`` counter);
* a tampered or truncated artifact is detected by ``repro verify-run``
  and transparently re-run on resume;
* a ledger only ever completes the run it was started for
  (fingerprint, shard plan, and schema mismatches are refused), and
  two live processes cannot share one.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import RetryPolicy, run_sharded
from repro.faults import FaultPlan, FaultRule, parse_fault_plan
from repro.metrics import MetricsRegistry
from repro.runstate import (
    LEDGER_SCHEMA,
    CheckpointLocked,
    FingerprintMismatch,
    LedgerExists,
    RunCheckpoint,
    RunStateError,
    artifact_name,
    audit_run,
    config_digest,
    read_journal,
    run_fingerprint,
)

#: A plan that permanently crashes every shard at dispatch: resuming a
#: complete ledger under it only succeeds if nothing is re-executed.
CRASH_ALL = FaultPlan(rules=(
    FaultRule(site="shard.start", kind="crash"),
))

FP = run_fingerprint("test", seed=7)


def double(value: int) -> int:
    """Module-level so the pool path can pickle it."""
    return value * 2


def _complete_ledger(directory, values=(1, 2, 3)) -> list[str]:
    """Run `double` to completion under a fresh checkpoint; returns
    the shard labels."""
    labels = [f"item:{v}" for v in values]
    checkpoint = RunCheckpoint(directory, FP)
    assert run_sharded(
        double, values, labels=labels, checkpoint=checkpoint
    ) == [v * 2 for v in values]
    return labels


# -- fingerprint and naming helpers ------------------------------------------

class TestFingerprints:
    def test_config_digest_is_stable_and_sensitive(self):
        from repro.workload.config import small_config

        a = config_digest(small_config(5_000, seed=1))
        assert a == config_digest(small_config(5_000, seed=1))
        assert a != config_digest(small_config(5_000, seed=2))
        assert len(a) == 64

    def test_run_fingerprint_normalizes_tuples(self):
        assert run_fingerprint("x", sizes=(1, 2)) == \
            run_fingerprint("x", sizes=[1, 2])

    def test_artifact_names_are_safe_and_collision_free(self):
        a = artifact_name("day:2011-08-03")
        b = artifact_name("day/2011-08-03")
        assert a.endswith(".pkl")
        assert "/" not in b and ":" not in a
        assert a != b  # slugs collide, hash suffix does not


class TestJournal:
    def test_last_entry_wins_and_torn_line_skipped(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            json.dumps({"shard_id": "s1", "artifact": "a1", "sha256": "x"})
            + "\n"
            + json.dumps({"shard_id": "s1", "artifact": "a2", "sha256": "y"})
            + "\n"
            + '{"shard_id": "s2", "artifact": "torn-by-a-cra'
        )
        entries = read_journal(journal)
        assert entries.keys() == {"s1"}
        assert entries["s1"]["artifact"] == "a2"

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == {}


# -- the ledger lifecycle ----------------------------------------------------

class TestRunCheckpoint:
    def test_fresh_run_then_full_resume(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        with resumed:
            loaded = resumed.begin(labels)
        assert sorted(loaded) == sorted(labels)
        assert [loaded[f"item:{v}"].result for v in (1, 2, 3)] == [2, 4, 6]

    def test_second_fresh_run_refused(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        again = RunCheckpoint(tmp_path / "run", FP)
        with pytest.raises(LedgerExists, match="--resume"):
            again.begin(labels)
        assert not (tmp_path / "run" / "LOCK").exists()  # released

    def test_fingerprint_mismatch_names_differing_keys(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        other = RunCheckpoint(
            tmp_path / "run", run_fingerprint("test", seed=8), resume=True
        )
        with pytest.raises(FingerprintMismatch, match="seed"):
            other.begin(labels)

    def test_shard_plan_mismatch_refused(self, tmp_path):
        _complete_ledger(tmp_path / "run")
        other = RunCheckpoint(tmp_path / "run", FP, resume=True)
        with pytest.raises(FingerprintMismatch, match="planned over"):
            other.begin(["item:1", "item:2"])

    def test_duplicate_labels_refused(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run", FP)
        with pytest.raises(RunStateError, match="unique shard labels"):
            checkpoint.begin(["s1", "s1"])

    def test_live_lock_rejects_concurrent_run(self, tmp_path):
        holder = RunCheckpoint(tmp_path / "run", FP)
        holder.begin(["s1"])
        try:
            intruder = RunCheckpoint(tmp_path / "run", FP, resume=True)
            with pytest.raises(CheckpointLocked, match="in use by pid"):
                intruder.begin(["s1"])
        finally:
            holder.close()

    def test_stale_lock_is_reclaimed(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        # Forge a lock owned by a pid that cannot be alive.
        (tmp_path / "run" / "LOCK").write_text("4000000000")
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        with resumed:
            assert sorted(resumed.begin(labels)) == sorted(labels)

    def test_tampered_artifact_not_loaded(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        victim = tmp_path / "run" / "artifacts" / artifact_name("item:2")
        data = bytearray(victim.read_bytes())
        data[5] ^= 0xFF
        victim.write_bytes(bytes(data))
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        with resumed:
            loaded = resumed.begin(labels)
        assert sorted(loaded) == ["item:1", "item:3"]

    def test_sink_artifact_round_trips_exactly(self, tmp_path):
        """A buffered pipeline sink — the real payload simulate shards
        journal — survives the artifact pickle/hash/reload loop."""
        from repro.pipeline import ElffSink
        from tests.helpers import make_record

        sink = ElffSink()
        for i in range(5):
            sink.add(make_record(cs_uri_path=f"/p{i}"))
        checkpoint = RunCheckpoint(tmp_path / "run", FP)
        with checkpoint:
            checkpoint.begin(["s1"])
            checkpoint.record("s1", sink, records=len(sink))
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        with resumed:
            loaded = resumed.begin(["s1"])
        assert loaded["s1"].result == sink
        assert loaded["s1"].result.body_text() == sink.body_text()

    def test_missing_artifact_not_loaded(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        (tmp_path / "run" / "artifacts" / artifact_name("item:1")).unlink()
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        with resumed:
            assert sorted(resumed.begin(labels)) == ["item:2", "item:3"]


# -- the engine integration --------------------------------------------------

class TestEngineResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_resume_never_redispatches_completed_shards(
        self, tmp_path, workers
    ):
        """A complete ledger resumes cleanly even under a fault plan
        that would permanently crash any dispatched shard — the proof
        that resumed shards never re-execute."""
        labels = _complete_ledger(tmp_path / "run")
        metrics = MetricsRegistry()
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        results = run_sharded(
            double, [1, 2, 3], workers=workers, labels=labels,
            metrics=metrics, checkpoint=resumed, fault_plan=CRASH_ALL,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        assert results == [2, 4, 6]
        assert metrics.counters["engine.shards.resumed"] == 3

    def test_partial_resume_runs_only_missing_shards(self, tmp_path):
        labels = _complete_ledger(tmp_path / "run")
        (tmp_path / "run" / "artifacts" / artifact_name("item:2")).unlink()
        metrics = MetricsRegistry()
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        results = run_sharded(
            double, [1, 2, 3], labels=labels, metrics=metrics,
            checkpoint=resumed,
        )
        assert results == [2, 4, 6]
        assert metrics.counters["engine.shards.resumed"] == 2
        # The re-run shard was journaled again: the ledger is complete.
        audit = audit_run(tmp_path / "run")
        assert audit.ok and audit.completed == 3

    def test_resumed_metrics_match_uninterrupted_run(self, tmp_path):
        clean = MetricsRegistry()
        run_sharded(double, [1, 2, 3], metrics=clean,
                    labels=["item:1", "item:2", "item:3"])
        labels = _complete_ledger(tmp_path / "run")
        resumed_metrics = MetricsRegistry()
        resumed = RunCheckpoint(tmp_path / "run", FP, resume=True)
        run_sharded(double, [1, 2, 3], labels=labels,
                    metrics=resumed_metrics, checkpoint=resumed)
        assert resumed_metrics.total_records() == clean.total_records()
        assert [s.shard_id for s in resumed_metrics.shards] == \
            [s.shard_id for s in clean.shards]

    def test_checkpoint_lock_released_after_run(self, tmp_path):
        _complete_ledger(tmp_path / "run")
        assert not (tmp_path / "run" / "LOCK").exists()


# -- the audit (repro verify-run) --------------------------------------------

class TestAuditRun:
    def test_clean_ledger_is_ok(self, tmp_path):
        _complete_ledger(tmp_path / "run")
        audit = audit_run(tmp_path / "run")
        assert audit.ok
        assert audit.completed == 3
        assert all(entry.status == "ok" for entry in audit.entries)

    def test_pending_shards_are_not_damage(self, tmp_path):
        _complete_ledger(tmp_path / "run")
        journal = tmp_path / "run" / "journal.jsonl"
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        audit = audit_run(tmp_path / "run")
        assert audit.ok
        statuses = {e.shard_id: e.status for e in audit.entries}
        assert list(statuses.values()).count("pending") == 1

    def test_tampered_artifact_reports_hash_mismatch(self, tmp_path):
        _complete_ledger(tmp_path / "run")
        victim = tmp_path / "run" / "artifacts" / artifact_name("item:3")
        victim.write_bytes(victim.read_bytes() + b"trailing garbage")
        audit = audit_run(tmp_path / "run")
        assert not audit.ok
        damaged = [e for e in audit.entries if e.damaged]
        assert [e.shard_id for e in damaged] == ["item:3"]
        assert damaged[0].status == "hash-mismatch"

    def test_missing_artifact_reports_missing(self, tmp_path):
        _complete_ledger(tmp_path / "run")
        (tmp_path / "run" / "artifacts" / artifact_name("item:1")).unlink()
        audit = audit_run(tmp_path / "run")
        assert not audit.ok
        assert any(e.status == "missing" for e in audit.entries)

    def test_unreadable_manifest_is_an_error(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("{not json")
        audit = audit_run(tmp_path)
        assert not audit.ok
        assert "unreadable manifest" in audit.errors[0]

    def test_foreign_schema_is_an_error(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(json.dumps(
            {"schema": "repro.runstate/99", "fingerprint": {}, "shards": []}
        ))
        audit = audit_run(tmp_path)
        assert not audit.ok
        assert LEDGER_SCHEMA in audit.errors[0]


# -- env-knob parse errors ---------------------------------------------------

class TestEnvKnobErrors:
    """Malformed environment knobs must raise errors that name the
    variable and quote the offending text."""

    @pytest.mark.parametrize("spec, fragment", [
        ("seed=abc", "seed=abc"),
        ("rate=lots", "rate=lots"),
        ("turbo=1", "unknown key"),
        ("kill=", "kill needs a shard id"),
        ("rate=1.5", "must be in [0, 1]"),
    ])
    def test_bad_fault_plan(self, spec, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_fault_plan(spec)
        assert "REPRO_FAULT_PLAN" in str(excinfo.value)
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize("text", ["three", "-1", "2.5"])
    def test_bad_max_shard_retries(self, monkeypatch, text):
        monkeypatch.setenv("REPRO_MAX_SHARD_RETRIES", text)
        with pytest.raises(ValueError) as excinfo:
            RetryPolicy.from_env()
        message = str(excinfo.value)
        assert "REPRO_MAX_SHARD_RETRIES" in message
        assert repr(text) in message

    @pytest.mark.parametrize("text", ["soon", "0", "-3"])
    def test_bad_shard_timeout(self, monkeypatch, text):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", text)
        with pytest.raises(ValueError) as excinfo:
            RetryPolicy.from_env()
        message = str(excinfo.value)
        assert "REPRO_SHARD_TIMEOUT" in message
        assert repr(text) in message

    def test_kill_spec_builds_targeted_rule(self):
        plan = parse_fault_plan("kill=day:2011-08-04")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.kind == "kill"
        assert rule.shard_id == "day:2011-08-04"
        assert rule.site == "shard.start"


# -- the CLI surface ---------------------------------------------------------

def _run_cli(*argv, env_extra=None, cwd=None):
    """Run ``python -m repro ...`` in a subprocess (needed so a SIGKILL
    fault kills the child, not the test runner)."""
    import repro

    src = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    env.pop("REPRO_FAULT_PLAN", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


@pytest.mark.chaos
class TestKillResumeCli:
    """The acceptance scenario: a SIGKILLed simulate resumed via
    --resume is byte-identical to an uninterrupted run."""

    SIM = ["simulate", "--requests", "3000", "--seed", "13", "--per-day"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sigkilled_simulate_resumes_byte_identical(
        self, tmp_path, workers
    ):
        clean = _run_cli(*self.SIM, "--out", str(tmp_path / "clean"))
        assert clean.returncode == 0
        killed = _run_cli(
            *self.SIM, "--out", str(tmp_path / "dead"),
            "--workers", str(workers),
            "--checkpoint-dir", str(tmp_path / "ledger"),
            env_extra={"REPRO_FAULT_PLAN": "kill=day:2011-08-04"},
        )
        assert killed.returncode == -signal.SIGKILL
        # The ledger survived the kill with at least one shard done.
        before = audit_run(tmp_path / "ledger")
        assert before.completed >= 1
        assert before.completed < 9
        resumed = _run_cli(
            *self.SIM, "--out", str(tmp_path / "resumed"),
            "--workers", str(workers),
            "--checkpoint-dir", str(tmp_path / "ledger"), "--resume",
            "--metrics", str(tmp_path / "metrics.json"),
        )
        assert resumed.returncode == 0, resumed.stderr
        clean_files = sorted((tmp_path / "clean").iterdir())
        resumed_files = sorted((tmp_path / "resumed").iterdir())
        assert [p.name for p in clean_files] == \
            [p.name for p in resumed_files]
        for a, b in zip(clean_files, resumed_files):
            assert a.read_bytes() == b.read_bytes(), a.name
        document = json.loads((tmp_path / "metrics.json").read_text())
        assert document["totals"]["resumed_shards"] == before.completed

    def test_analyze_streaming_resume(self, tmp_path):
        assert _run_cli(
            *self.SIM, "--out", str(tmp_path / "logs")
        ).returncode == 0
        logs = sorted(str(p) for p in (tmp_path / "logs").glob("*.log"))
        first = _run_cli(
            "analyze", *logs, "--streaming",
            "--checkpoint-dir", str(tmp_path / "ledger"),
        )
        assert first.returncode == 0
        again = _run_cli(
            "analyze", *logs, "--streaming",
            "--checkpoint-dir", str(tmp_path / "ledger"), "--resume",
            "--metrics", str(tmp_path / "metrics.json"),
        )
        assert again.returncode == 0, again.stderr
        assert again.stdout.startswith(first.stdout)  # + metrics line
        document = json.loads((tmp_path / "metrics.json").read_text())
        assert document["totals"]["resumed_shards"] == len(logs)


class TestCliErrors:
    def test_resume_without_checkpoint_dir(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--checkpoint-dir"):
            main(["simulate", "--requests", "100",
                  "--out", "/tmp/x", "--resume"])

    def test_fresh_run_into_existing_ledger_refused(self, tmp_path):
        from repro.cli import main

        args = ["simulate", "--requests", "600", "--seed", "4",
                "--out", str(tmp_path / "out"),
                "--checkpoint-dir", str(tmp_path / "ledger")]
        assert main(args) == 0
        with pytest.raises(SystemExit, match="already holds a run ledger"):
            main(args)

    def test_resume_with_different_run_refused(self, tmp_path):
        from repro.cli import main

        base = ["simulate", "--out", str(tmp_path / "out"),
                "--checkpoint-dir", str(tmp_path / "ledger")]
        assert main(base + ["--requests", "600", "--seed", "4"]) == 0
        with pytest.raises(SystemExit, match="different run"):
            main(base + ["--requests", "800", "--seed", "4", "--resume"])


class TestVerifyRunCli:
    def _ledger(self, tmp_path) -> Path:
        from repro.cli import main

        ledger = tmp_path / "ledger"
        assert main([
            "simulate", "--requests", "600", "--seed", "4",
            "--out", str(tmp_path / "out"),
            "--checkpoint-dir", str(ledger),
        ]) == 0
        return ledger

    def test_clean_ledger_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        assert main(["verify-run", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "9 completed, 0 pending, 0 damaged" in out

    def test_damaged_ledger_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        artifact = next((ledger / "artifacts").glob("*.pkl"))
        artifact.write_bytes(b"not a pickle")
        assert main(["verify-run", str(ledger)]) == 1
        assert "hash-mismatch" in capsys.readouterr().out

    def test_missing_ledger_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["verify-run", str(tmp_path / "nowhere")]) == 1
        assert "unreadable manifest" in capsys.readouterr().out


class TestVerifyRunJson:
    """``repro verify-run --json``: the machine-readable audit."""

    def _ledger(self, tmp_path) -> Path:
        from repro.cli import main

        ledger = tmp_path / "ledger"
        assert main([
            "simulate", "--requests", "600", "--seed", "4",
            "--out", str(tmp_path / "out"),
            "--checkpoint-dir", str(ledger),
        ]) == 0
        return ledger

    def test_clean_ledger_document(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        capsys.readouterr()  # drain the simulate output
        assert main(["verify-run", str(ledger), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.verify/1"
        assert document["ok"] is True
        assert document["errors"] == []
        assert document["counts"] == {
            "planned": 9, "completed": 9, "pending": 0, "damaged": 0,
        }
        assert len(document["shards"]["completed"]) == 9
        assert document["shards"]["pending"] == []
        assert document["shards"]["damaged"] == []
        assert document["fingerprint"]["command"] == "simulate"

    def test_damaged_ledger_document_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        ledger = self._ledger(tmp_path)
        artifact = next((ledger / "artifacts").glob("*.pkl"))
        artifact.write_bytes(b"not a pickle")
        capsys.readouterr()  # drain the simulate output
        assert main(["verify-run", str(ledger), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["counts"]["damaged"] == 1
        (damaged,) = document["shards"]["damaged"]
        assert damaged["status"] == "hash-mismatch"
        assert damaged["shard_id"].startswith("day:")

    def test_missing_ledger_document(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["verify-run", str(tmp_path / "nowhere"), "--json"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert "unreadable manifest" in document["errors"][0]


_RACE_SCRIPT = """
import sys, time
from pathlib import Path
from repro.runstate import CheckpointLocked, RunCheckpoint, run_fingerprint

directory, go, ready = Path(sys.argv[1]), Path(sys.argv[2]), Path(sys.argv[3])
checkpoint = RunCheckpoint(
    directory, run_fingerprint("test", seed=7), resume=True
)
ready.touch()  # imports done; the race itself starts at `go`
while not go.exists():
    time.sleep(0.001)
try:
    checkpoint.begin(["item:1", "item:2", "item:3"])
except CheckpointLocked:
    print("LOCKED")
else:
    time.sleep(2.0)  # hold the lock so the loser sees a live owner
    checkpoint.close()
    print("WON")
"""


class TestStaleLockReclaimRace:
    def test_two_processes_reclaim_exactly_one_winner(self, tmp_path):
        """Two real processes race to reclaim the same stale LOCK; the
        tomb rename + O_EXCL create admit exactly one."""
        _complete_ledger(tmp_path / "run")
        # Forge a lock owned by a pid that cannot be alive.
        (tmp_path / "run" / "LOCK").write_text("4000000000")
        go = tmp_path / "go"
        ready = [tmp_path / "ready-0", tmp_path / "ready-1"]
        racers = [
            subprocess.Popen(
                [sys.executable, "-c", _RACE_SCRIPT,
                 str(tmp_path / "run"), str(go), str(ready[i])],
                env=dict(os.environ) | {
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parent.parent / "src"
                    ),
                },
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for i in range(2)
        ]
        deadline = time.time() + 30.0
        while not all(p.exists() for p in ready):
            assert time.time() < deadline, "racers failed to start"
            time.sleep(0.01)
        go.touch()
        outcomes = []
        for racer in racers:
            out, err = racer.communicate(timeout=60)
            assert racer.returncode == 0, err
            outcomes.append(out.strip())
        assert sorted(outcomes) == ["LOCKED", "WON"]
        # The reclaim left no stale tomb or lock behind.
        assert not (tmp_path / "run" / "LOCK").exists()
        leftovers = list((tmp_path / "run").glob("LOCK.stale-*"))
        assert leftovers == []
