"""The paper's reported numbers, used by the benches to print
paper-vs-measured comparisons.

Values are transcribed from Chaabane et al., "Censorship in the Wild:
Analyzing Internet Filtering in Syria" (IMC 2014).  Absolute request
counts are not comparable (the paper analyzed 751 M requests; the
benches simulate a few hundred thousand), so the benches compare
*shares and rankings*.
"""

# Table 1: dataset sizes.
TABLE1 = {
    "Full": 751_295_830,
    "Sample": 32_310_958,
    "User": 6_374_333,
    "Denied": 47_452_194,
}

# Table 3 (D_full column): percent of total traffic.
TABLE3_FULL_PCT = {
    "allowed": 93.25,
    "proxied": 0.47,
    "denied": 6.28,
    "tcp_error": 2.86,
    "internal_error": 1.96,
    "invalid_request": 0.36,
    "unsupported_protocol": 0.10,
    "dns_unresolved_hostname": 0.02,
    "dns_server_failure": 0.01,
    "policy_denied": 0.98,
    "policy_redirect": 0.00,
}

# Table 4: top-10 domains with share of their traffic class (%).
TABLE4_ALLOWED = [
    ("google.com", 7.19), ("xvideos.com", 3.34), ("gstatic.com", 3.30),
    ("facebook.com", 2.54), ("microsoft.com", 2.38), ("fbcdn.net", 2.35),
    ("windowsupdate.com", 2.20), ("google-analytics.com", 1.77),
    ("doubleclick.net", 1.60), ("msn.com", 1.57),
]
TABLE4_CENSORED = [
    ("facebook.com", 21.91), ("metacafe.com", 17.33), ("skype.com", 6.83),
    ("live.com", 5.98), ("google.com", 5.71), ("zynga.com", 5.14),
    ("yahoo.com", 5.02), ("wikimedia.org", 4.16), ("fbcdn.net", 3.59),
    ("ceipmsn.com", 1.83),
]

# Table 5: top censored domains, Aug 3, 8am-10am window (share %).
TABLE5_8_10 = [
    ("skype.com", 29.24), ("facebook.com", 19.45), ("live.com", 9.59),
    ("metacafe.com", 7.59), ("google.com", 6.76),
]

# Table 6: selected similarity values.
TABLE6 = {
    ("SG-43", "SG-44"): 0.8226,
    ("SG-44", "SG-46"): 0.8757,
    ("SG-48", "SG-45"): 0.6701,
    ("SG-48", "SG-43"): 0.0696,
    ("SG-48", "SG-47"): 0.0455,
}

# Table 7: policy_redirect hosts (share of redirects, %).
TABLE7 = [
    ("upload.youtube.com", 86.79), ("www.facebook.com", 10.69),
    ("ar-ar.facebook.com", 1.77), ("competition.mbc.net", 0.33),
    ("sharek.aljazeera.net", 0.29),
]

# Table 8: top suspected domains (share of censored traffic, %).
TABLE8 = [
    ("metacafe.com", 17.33), ("skype.com", 6.83), ("wikimedia.org", 4.16),
    (".il", 1.52), ("amazon.com", 0.85), ("aawsat.com", 0.70),
    ("jumblo.com", 0.31), ("jeddahbikers.com", 0.29), ("badoo.com", 0.20),
    ("islamway.com", 0.20),
]

# Table 9: suspected-domain categories (domain count, share of
# censored traffic %) — D_sample.
TABLE9 = [
    ("Instant Messaging", 2, 16.63), ("Streaming Media", 6, 13.87),
    ("Education/Reference", 4, 9.57), ("General News", 62, 3.07),
    ("NA", 42, 2.39), ("Online Shopping", 2, 1.66),
    ("Internet Services", 6, 1.05), ("Social Networking", 6, 0.75),
    ("Entertainment", 4, 0.65), ("Forum/Bulletin Boards", 8, 0.57),
]

# Table 10: keywords (share of censored traffic, %).
TABLE10 = [
    ("proxy", 53.61), ("hotspotshield", 1.71), ("ultrareach", 0.69),
    ("israel", 0.65), ("ultrasurf", 0.43),
]

# Table 11: country censorship ratios (%).
TABLE11 = [
    ("IL", 6.69), ("KW", 2.02), ("RU", 0.64), ("GB", 0.26),
    ("NL", 0.17), ("SG", 0.13), ("BG", 0.09),
]

# Table 12: Israeli subnets (censored requests, censored IPs,
# allowed requests).
TABLE12 = [
    ("84.229.0.0/16", 574, 198, 0),
    ("46.120.0.0/15", 571, 11, 5),
    ("89.138.0.0/15", 487, 148, 1),
    ("212.235.64.0/19", 474, 5, 325),
    ("212.150.0.0/16", 471, 3, 6366),
]

# Table 13: top censored social networks (censored share of all
# censored traffic, %).
TABLE13 = [
    ("facebook.com", 21.91), ("badoo.com", 0.20), ("netlog.com", 0.13),
    ("linkedin.com", 0.10), ("skyrock.com", 0.04), ("hi5.com", 0.04),
    ("twitter.com", 0.00),
]

# Table 14: blocked Facebook pages (censored, allowed).
TABLE14 = [
    ("Syrian.Revolution", 1461, 891), ("syria.news.F.N.N", 191, 165),
    ("ShaamNews", 114, 3944), ("fffm14", 42, 18),
    ("barada.channel", 25, 9), ("DaysOfRage", 19, 2),
]

# Table 15: Facebook plugin elements (share of censored fb traffic, %).
TABLE15 = [
    ("/plugins/like.php", 43.04), ("/extern/login_status.php", 38.99),
    ("/plugins/likebox.php", 4.78), ("/plugins/send.php", 4.35),
    ("/plugins/comments.php", 3.36), ("/fbml/fbjs_ajax_proxy.php", 2.64),
    ("/connect/canvas_proxy.php", 2.51),
]

# Section 7.1 headline numbers.
TOR = {
    "requests": 95_000,
    "relays": 1_111,
    "http_share_pct": 73.0,
    "censored_pct": 1.38,
    "tcp_error_pct": 16.2,
    "censoring_proxy": "SG-44",
}

# Section 7.2.
ANONYMIZERS = {
    "hosts": 821,
    "requests_share_pct": 0.4,
    "never_filtered_hosts_pct": 92.7,
    "never_filtered_requests_pct": 25.0,
    "majority_allowed_pct": 50.0,
}

# Section 7.3.
BITTORRENT = {
    "announces": 338_168,
    "users": 38_575,
    "contents": 35_331,
    "allowed_pct": 99.97,
    "resolve_rate_pct": 77.4,
    "censored_tracker": "tracker-proxy.furk.net",
}

# Section 7.4.
GOOGLE_CACHE = {"requests": 4_860, "censored": 12}

# Section 4, HTTPS paragraph.
HTTPS = {
    "share_pct": 0.08,
    "censored_pct": 0.82,
    "censored_to_ip_pct": 82.0,
}

# Fig. 4 headline numbers.
USERS = {
    "total": 147_802,
    "censored_pct": 1.57,
    "active_censored_pct": 50.0,
    "active_noncensored_pct": 5.0,
}
