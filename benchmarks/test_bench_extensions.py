"""Benches for the extension analyses: the MITM check, the keyword
weather report, the economics indices, and the what-if policy runs."""

from __future__ import annotations

from repro.analysis.economics import censorship_economics
from repro.analysis.https_mitm import https_mitm_check
from repro.analysis.weather import keyword_weather
from repro.policy.syria import KEYWORDS
from repro.reporting import render_table
from repro.scenarios import build_custom_scenario, no_keyword_filtering
from repro.workload.config import small_config


def test_ext_https_mitm_check(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: https_mitm_check(bench_scenario.full), rounds=3
    )
    print(f"\nHTTPS MITM check — {result.https_requests} CONNECT rows, "
          f"{result.suspicious_rows} with decrypted fields "
          "(paper: no sign of interception in the main logs)")
    assert not result.interception_evidence


def test_ext_keyword_weather(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: keyword_weather(bench_scenario.full, KEYWORDS), rounds=2
    )
    print()
    print(render_table(
        ["Day", *result.keywords],
        [
            [day, *(int(result.counts[k][j]) for k in range(len(result.keywords)))]
            for j, day in enumerate(result.days)
        ],
        title="Keyword weather report (ConceptDoppler-style tracking)",
    ))
    proxy_series = dict(result.series("proxy"))
    assert all(count > 0 for day, count in proxy_series.items()
               if day.startswith("2011-08"))


def test_ext_economics_indices(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: censorship_economics(bench_scenario.user), rounds=3
    )
    print(f"\nEconomics indices (D_user) — collateral "
          f"{result.collateral_index_pct:.1f}% of censored volume, "
          f"precision {result.precision_index_pct:.1f}%, stealth "
          f"{result.stealth_index_pct:.1f}% of users unaffected")
    assert result.collateral_index_pct + result.precision_index_pct == 100.0


def test_ext_whatif_no_keywords(benchmark):
    """End-to-end what-if: rebuild the deployment without the keyword
    engine and measure the censored-volume collapse."""
    config = small_config(25_000, seed=77)

    def run():
        from repro.analysis.overview import traffic_breakdown

        baseline = build_custom_scenario(config)
        stripped = build_custom_scenario(config, no_keyword_filtering)
        return (
            traffic_breakdown(baseline.full).censored_pct,
            traffic_breakdown(stripped.full).censored_pct,
        )

    base_pct, stripped_pct = benchmark.pedantic(run, rounds=1)
    print(f"\nWhat-if — censored share {base_pct:.2f}% with keywords vs "
          f"{stripped_pct:.2f}% without (paper: 'proxy' alone is 53.6% "
          "of censored traffic)")
    assert stripped_pct < base_pct * 0.65
