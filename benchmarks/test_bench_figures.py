"""One bench per paper figure (Figs 1-10).

Each bench times the analysis behind the figure and prints the series
or distribution it would plot (run with ``-s``).
"""

from __future__ import annotations

import numpy as np
import paper_values as paper

from repro.analysis import (
    anonymizers,
    categories,
    overview,
    proxies,
    temporal,
    toranalysis,
    users,
)
from repro.reporting import render_table
from repro.reporting.tables import render_bar_chart
from repro.stats.powerlaw import fit_power_law
from repro.timeline import PROTEST_DAY, day_epoch


def _aug_range():
    return day_epoch("2011-08-01"), day_epoch("2011-08-06") + 86400


def test_fig1_ports(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: overview.port_distribution(bench_scenario.full), rounds=3
    )
    print()
    print(render_bar_chart(
        [(str(p), float(c)) for p, c in result.censored[:8]],
        title="Fig 1 — censored traffic by destination port "
              "(paper: 80 and 443 dominate, 9001 third)",
    ))
    censored_ports = [p for p, _ in result.censored[:5]]
    assert 80 in censored_ports


def test_fig2_powerlaw(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: overview.domain_request_distribution(bench_scenario.full),
        rounds=2,
    )
    counts = result.per_domain_counts["allowed"]
    alpha = fit_power_law(counts, xmin=3)
    print(f"\nFig 2 — requests-per-domain: {len(counts)} domains, "
          f"max={counts.max()}, tail exponent alpha≈{alpha:.2f} "
          "(paper: power-law curves for allowed/denied/censored)")
    print(render_table(
        ["# requests", "# domains (allowed)"],
        [[x, y] for x, y in result.allowed[:6]] + [["...", "..."]],
    ))
    assert counts.max() > 100 * np.median(counts)


def test_fig3_categories(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: categories.censored_category_distribution(
            bench_scenario.full, bench_scenario.categorizer
        ),
        rounds=3,
    )
    print()
    print(render_bar_chart(
        [(s.category, s.share_pct) for s in result[:10]],
        title="Fig 3 — censored traffic by category "
              "(paper: Content Server >25%, then Streaming Media)",
    ))
    by_category = {s.category: s.share_pct for s in result}
    assert by_category.get("Content Server", 0) > 15.0


def test_fig4_users(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: users.user_analysis(bench_scenario.user, active_threshold=50),
        rounds=3,
    )
    print(f"\nFig 4 — users: {result.total_users} total "
          f"(paper {paper.USERS['total']:,}), "
          f"censored {result.censored_user_pct:.2f}% "
          f"(paper {paper.USERS['censored_pct']}%), "
          f"active share censored/non-censored: "
          f"{result.active_share_censored_pct:.1f}%/"
          f"{result.active_share_noncensored_pct:.1f}% "
          f"(paper ~50%/5%)")
    assert (
        result.active_share_censored_pct
        > result.active_share_noncensored_pct
    )


def test_fig5_timeseries(benchmark, bench_scenario):
    start, end = _aug_range()
    result = benchmark.pedantic(
        lambda: temporal.traffic_timeseries(bench_scenario.full, start, end),
        rounds=3,
    )
    daily = result.allowed_counts.reshape(6, -1).sum(axis=1)
    print("\nFig 5 — daily allowed volume Aug 1-6 "
          "(paper: Friday Aug 5 slowdown):",
          daily.tolist())
    assert daily[4] < daily[2]  # Friday < Wednesday


def test_fig6_rcv(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: temporal.relative_censored_volume(
            bench_scenario.full, PROTEST_DAY
        ),
        rounds=3,
    )
    hourly = np.array([
        np.nanmean(result.rcv[h * 12:(h + 1) * 12]) for h in range(24)
    ])
    print("\nFig 6 — RCV by hour on Aug 3 (paper: ~1% baseline, "
          "~2% peak at 8-9:30am):")
    print(render_bar_chart(
        [(f"{h:02d}h", float(hourly[h]) * 100)
         for h in range(4, 24, 2) if not np.isnan(hourly[h])],
    ))
    morning = np.nanmean(result.rcv[int(8 * 12): int(9.5 * 12)])
    afternoon = np.nanmean(result.rcv[int(14 * 12): int(20 * 12)])
    assert morning > afternoon


def test_fig7_proxy_load(benchmark, bench_scenario):
    start = day_epoch("2011-08-03")
    result = benchmark.pedantic(
        lambda: proxies.proxy_load_timeseries(
            bench_scenario.full, start, start + 2 * 86400, bin_seconds=6 * 3600
        ),
        rounds=3,
    )
    total_by_proxy = result.total_shares.mean(axis=1)
    censored_by_proxy = result.censored_shares.mean(axis=1)
    print()
    print(render_table(
        ["Proxy", "Mean total share %", "Mean censored share %"],
        [[proxy, f"{total_by_proxy[i]:.1f}", f"{censored_by_proxy[i]:.1f}"]
         for i, proxy in enumerate(result.proxies)],
        title="Fig 7 — per-proxy load, Aug 3-4 (paper: balanced total, "
              "SG-48 over-represented in censored)",
    ))
    sg48 = result.proxies.index("SG-48")
    assert censored_by_proxy[sg48] > total_by_proxy[sg48]


def test_fig8_tor(benchmark, bench_scenario):
    tor = toranalysis.identify_tor_traffic(
        bench_scenario.full, bench_scenario.generator.tor_directory
    )
    start, end = _aug_range()
    result = benchmark.pedantic(
        lambda: toranalysis.tor_hourly_series(tor, start, end), rounds=3
    )
    overview_stats = toranalysis.tor_overview(tor)
    daily = result.counts.reshape(6, 24).sum(axis=1)
    print(f"\nFig 8 — Tor requests/day Aug 1-6: {daily.tolist()} "
          "(paper: peak on Aug 3); "
          f"http share {overview_stats.http_share_pct:.1f}% "
          f"(paper {paper.TOR['http_share_pct']}%), censored by "
          f"{overview_stats.censored_by_proxy} (paper: SG-44 only)")
    assert daily[2] == daily.max()  # Aug 3 peak
    assert set(overview_stats.censored_by_proxy) <= {"SG-44"}


def test_fig9_rfilter(benchmark, bench_scenario):
    tor = toranalysis.identify_tor_traffic(
        bench_scenario.full, bench_scenario.generator.tor_directory
    )
    result = benchmark.pedantic(
        lambda: toranalysis.refilter_ratio(tor, bin_seconds=6 * 3600),
        rounds=3,
    )
    values = result.rfilter[~np.isnan(result.rfilter)]
    print(f"\nFig 9 — R_filter over {len(values)} six-hour bins "
          "(hourly in the paper; coarser here for statistical power): "
          f"mean={values.mean():.2f}, std={values.std():.2f} "
          "(paper: high variance = inconsistent Tor blocking)")
    assert values.std() > 0.025


def test_fig10_anonymizers(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: anonymizers.anonymizer_analysis(
            bench_scenario.full, bench_scenario.categorizer
        ),
        rounds=2,
    )
    print(f"\nFig 10 — anonymizers: {result.hosts} hosts "
          f"(paper {paper.ANONYMIZERS['hosts']}), "
          f"never filtered {result.never_filtered_hosts_pct:.1f}% of hosts / "
          f"{result.never_filtered_requests_pct:.1f}% of requests "
          f"(paper 92.7%/25%), filtered hosts with more allowed than "
          f"censored: {result.majority_allowed_pct:.1f}% (paper >50%)")
    assert result.hosts > 60
    assert result.never_filtered_hosts_pct > 40.0
