"""Benches for the narrative sections without a table/figure number:
HTTPS (Section 4), BitTorrent (7.3), Google cache (7.4), plus the
end-to-end report build."""

from __future__ import annotations

import paper_values as paper

from repro.analysis import googlecache, overview, p2p, stringfilter
from repro.analysis.report import build_report
from repro.bittorrent import TitleDatabase


def test_sec4_https(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: overview.https_breakdown(bench_scenario.full), rounds=3
    )
    print(f"\nSection 4 HTTPS — share of traffic "
          f"{result.https_share_pct:.2f}% (paper {paper.HTTPS['share_pct']}%; "
          "ours is higher because every CONNECT logs one line), "
          f"censored {result.censored_share_pct:.2f}% of HTTPS "
          f"(paper {paper.HTTPS['censored_pct']}%), of which to raw IPs "
          f"{result.censored_to_ip_pct:.1f}% "
          f"(paper {paper.HTTPS['censored_to_ip_pct']}%)")
    if result.censored_https >= 5:
        assert result.censored_to_ip_pct > 50.0


def test_sec73_bittorrent(benchmark, bench_scenario):
    titledb = TitleDatabase(bench_scenario.generator.torrent_catalog)
    result = benchmark.pedantic(
        lambda: p2p.bittorrent_analysis(bench_scenario.full, titledb),
        rounds=2,
    )
    print(f"\nSection 7.3 BitTorrent — {result.announce_requests} announces "
          f"(paper {paper.BITTORRENT['announces']:,}), "
          f"{result.unique_users} users, {result.unique_contents} contents, "
          f"allowed {result.allowed_share_pct:.2f}% (paper 99.97%), "
          f"titles resolved {result.resolve_rate_pct:.1f}% (paper 77.4%), "
          f"circumvention-tool announces {result.circumvention_announces}, "
          f"IM-software announces {result.im_software_announces}, "
          f"censored trackers {result.censored_tracker_hosts} "
          "(paper: tracker-proxy.furk.net)")
    assert result.allowed_share_pct > 97.0
    assert set(result.censored_tracker_hosts) <= {"tracker-proxy.furk.net"}


def test_sec74_google_cache(benchmark, bench_scenario):
    suspected = {
        row.domain
        for row in stringfilter.recover_censored_domains(bench_scenario.full)
    }
    result = benchmark.pedantic(
        lambda: googlecache.google_cache_analysis(
            bench_scenario.full, suspected | {"panet.co.il", "free-syria.com"}
        ),
        rounds=3,
    )
    print(f"\nSection 7.4 Google cache — {result.requests} fetches "
          f"(paper {paper.GOOGLE_CACHE['requests']:,}), censored "
          f"{result.censored} (paper {paper.GOOGLE_CACHE['censored']}), "
          f"allowed fetches of censored content: "
          f"{result.censored_content_fetches} via {result.censored_targets}")
    assert result.allowed > result.censored * 5
    assert result.censored_content_fetches > 0


def test_full_report_build(benchmark, bench_scenario):
    """The end-to-end pipeline cost: every analysis in one pass."""
    result = benchmark.pedantic(
        lambda: build_report(bench_scenario, recover_keywords=False),
        rounds=1,
    )
    print(f"\nFull report built: {len(result.table8)} suspected domains, "
          f"{result.tor.total_requests} Tor requests, "
          f"{result.table3['full'].censored_pct:.2f}% censored")
    assert result.table4.censored
