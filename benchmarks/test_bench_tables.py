"""One bench per paper table (Tables 1-15).

Each bench times the analysis that regenerates the table, then prints
the paper's rows next to the measured ones (run with ``-s`` to see the
comparisons).  Absolute counts differ by construction — the simulated
deployment is ~3,000× smaller than the leak — so the comparisons are
over shares and rankings.
"""

from __future__ import annotations

import paper_values as paper

from repro.analysis import (
    ipfilter,
    overview,
    proxies,
    redirects,
    socialmedia,
    stringfilter,
    temporal,
)
from repro.geoip import builtin_registry
from repro.net.ip import parse_network
from repro.policy.syria import KEYWORDS
from repro.reporting import render_table
from repro.timeline import PROTEST_DAY


def _show(title, headers, rows):
    print()
    print(render_table(headers, rows, title=title))


def test_table1_datasets(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: overview.dataset_inventory({
            "Full": bench_scenario.full,
            "Sample": bench_scenario.sample,
            "User": bench_scenario.user,
            "Denied": bench_scenario.denied,
        }),
        rounds=3,
    )
    _show(
        "Table 1 — datasets (paper counts are the 751 M-request leak)",
        ["Dataset", "Paper requests", "Measured", "Days", "Proxies"],
        [
            [row.name, paper.TABLE1.get(row.name, "-"), row.requests,
             len(row.days), row.proxies]
            for row in result
        ],
    )


def test_table3_traffic_breakdown(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: overview.traffic_breakdown(bench_scenario.full), rounds=3
    )
    rows = [
        ["allowed", paper.TABLE3_FULL_PCT["allowed"], f"{result.allowed_pct:.2f}"],
        ["proxied", paper.TABLE3_FULL_PCT["proxied"], f"{result.proxied_pct:.2f}"],
        ["denied", paper.TABLE3_FULL_PCT["denied"], f"{result.denied_pct:.2f}"],
        ["censored", 0.98, f"{result.censored_pct:.2f}"],
    ]
    rows += [
        [row.exception_id,
         paper.TABLE3_FULL_PCT.get(row.exception_id, "-"),
         f"{row.share_pct:.2f}"]
        for row in result.exception_rows
    ]
    _show("Table 3 — traffic classes (% of D_full)",
          ["Class", "Paper %", "Measured %"], rows)
    assert result.allowed_pct > 90
    assert 0.5 < result.censored_pct < 2.5


def test_table4_top_domains(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: overview.top_domains(bench_scenario.full), rounds=3
    )
    rows = []
    for i in range(10):
        p_allowed = paper.TABLE4_ALLOWED[i] if i < len(paper.TABLE4_ALLOWED) else ("-", "-")
        p_censored = paper.TABLE4_CENSORED[i] if i < len(paper.TABLE4_CENSORED) else ("-", "-")
        m_allowed = result.allowed[i] if i < len(result.allowed) else None
        m_censored = result.censored[i] if i < len(result.censored) else None
        rows.append([
            f"{p_allowed[0]} ({p_allowed[1]}%)",
            f"{m_allowed.domain} ({m_allowed.share_pct:.2f}%)" if m_allowed else "-",
            f"{p_censored[0]} ({p_censored[1]}%)",
            f"{m_censored.domain} ({m_censored.share_pct:.2f}%)" if m_censored else "-",
        ])
    _show("Table 4 — top-10 domains",
          ["Paper allowed", "Measured allowed",
           "Paper censored", "Measured censored"], rows)
    measured_censored = {r.domain for r in result.censored}
    assert {"facebook.com", "metacafe.com", "skype.com"} <= measured_censored


def test_table5_morning_windows(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: temporal.top_censored_windows(bench_scenario.full, PROTEST_DAY),
        rounds=3,
    )
    eight_to_ten = result[1]
    _show(
        "Table 5 — top censored domains, Aug 3, 8am-10am "
        f"(paper top: {paper.TABLE5_8_10[:3]})",
        ["Domain", "Measured % of censored"],
        [[domain, f"{share:.1f}"] for domain, share in eight_to_ten.rows[:8]],
    )
    top_domains = [domain for domain, _ in eight_to_ten.rows[:4]]
    assert "skype.com" in top_domains


def test_table6_proxy_similarity(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: proxies.proxy_similarity(bench_scenario.full), rounds=3
    )
    rows = [
        [f"{a} vs {b}", value, f"{result.value(a, b):.3f}"]
        for (a, b), value in paper.TABLE6.items()
    ]
    _show("Table 6 — censored-domain cosine similarity (full period)",
          ["Pair", "Paper (Aug 3)", "Measured"], rows)
    # structure: the SG-48 outlier, with SG-45 its closest peer
    assert result.value("SG-48", "SG-43") < result.value("SG-43", "SG-46")
    assert result.value("SG-48", "SG-45") > result.value("SG-48", "SG-47")


def test_table7_redirect_hosts(benchmark, social_scenario):
    result = benchmark.pedantic(
        lambda: redirects.redirect_hosts(social_scenario.full), rounds=3
    )
    paper_shares = dict(paper.TABLE7)
    _show("Table 7 — policy_redirect hosts (% of redirects)",
          ["Host", "Paper %", "Measured %"],
          [[host, paper_shares.get(host, "-"), f"{share:.2f}"]
           for host, _, share in result.rows])
    assert result.rows[0][0] == "upload.youtube.com"


def test_table8_suspected_domains(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: stringfilter.recover_censored_domains(bench_scenario.full),
        rounds=2,
    )
    paper_shares = dict(paper.TABLE8)
    _show(
        f"Table 8 — suspected domains (measured: {len(result)} domains; "
        "paper: 105)",
        ["Domain", "Paper % of censored", "Measured %"],
        [[row.domain, paper_shares.get(row.domain, "-"),
          f"{row.censored_share_pct:.2f}"] for row in result[:12]],
    )
    recovered = {row.domain for row in result}
    assert {"metacafe.com", "skype.com", "wikimedia.org"} <= recovered


def test_table9_domain_categories(benchmark, bench_scenario):
    suspected = stringfilter.recover_censored_domains(bench_scenario.full)
    total_censored = overview.traffic_breakdown(bench_scenario.full).censored
    result = benchmark.pedantic(
        lambda: stringfilter.categorize_suspected(
            suspected, bench_scenario.categorizer, total_censored
        ),
        rounds=3,
    )
    paper_rows = {cat: (n, share) for cat, n, share in paper.TABLE9}
    _show("Table 9 — suspected-domain categories",
          ["Category", "Paper (#dom, %)", "Measured (#dom, %)"],
          [[row.category, paper_rows.get(row.category, "-"),
            (row.domain_count, round(row.censored_share_pct, 2))]
           for row in result])
    categories = [row.category for row in result]
    assert "Streaming Media" in categories
    assert "Instant Messaging" in categories


def test_table10_keywords(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: stringfilter.keyword_stats(bench_scenario.full, KEYWORDS),
        rounds=2,
    )
    paper_shares = dict(paper.TABLE10)
    _show("Table 10 — blacklisted keywords (% of censored traffic)",
          ["Keyword", "Paper %", "Measured %", "Measured allowed"],
          [[row.keyword, paper_shares[row.keyword],
            f"{row.censored_share_pct:.2f}", row.allowed] for row in result])
    assert result[0].keyword == "proxy"
    assert all(row.allowed == 0 for row in result)


def test_table11_country_ratio(benchmark, ip_scenario):
    ip_frame = ipfilter.ipv4_subset(ip_scenario.full)
    result = benchmark.pedantic(
        lambda: ipfilter.country_censorship_ratio(ip_frame, builtin_registry()),
        rounds=3,
    )
    paper_ratios = dict(paper.TABLE11)
    _show("Table 11 — censorship ratio per country (D_IPv4)",
          ["Country", "Paper ratio %", "Measured ratio %", "Measured c/a"],
          [[row.country, paper_ratios.get(row.country, "-"),
            f"{row.ratio_pct:.2f}", f"{row.censored}/{row.allowed}"]
           for row in result])
    by_country = {row.country: row.ratio_pct for row in result}
    assert "IL" in by_country
    if "NL" in by_country:
        assert by_country["IL"] > by_country["NL"]


def test_table12_israeli_subnets(benchmark, ip_scenario):
    ip_frame = ipfilter.ipv4_subset(ip_scenario.full)
    subnets = ip_scenario.policy.blocked_subnets + (
        parse_network("212.150.0.0/16"),
    )
    result = benchmark.pedantic(
        lambda: ipfilter.israeli_subnets(ip_frame, subnets), rounds=3
    )
    paper_rows = {s: (c, i, a) for s, c, i, a in paper.TABLE12}
    _show("Table 12 — Israeli subnets (censored req / censored IPs / allowed req)",
          ["Subnet", "Paper", "Measured"],
          [[row.subnet, paper_rows.get(row.subnet, "-"),
            (row.censored_requests, row.censored_ips, row.allowed_requests)]
           for row in result])
    by_subnet = {row.subnet: row for row in result}
    assert by_subnet["212.150.0.0/16"].allowed_requests > 0
    assert by_subnet["84.229.0.0/16"].allowed_requests == 0


def test_table13_social_networks(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: socialmedia.osn_breakdown(bench_scenario.full), rounds=3
    )
    paper_shares = dict(paper.TABLE13)
    _show("Table 13 — censored social networks (% of censored traffic)",
          ["Network", "Paper %", "Measured %", "Measured c/a"],
          [[row.network, paper_shares.get(row.network, "-"),
            f"{row.censored_share_pct:.2f}", f"{row.censored}/{row.allowed}"]
           for row in result])
    assert result[0].network == "facebook.com"


def test_table14_facebook_pages(benchmark, social_scenario):
    result = benchmark.pedantic(
        lambda: socialmedia.facebook_pages(social_scenario.full), rounds=3
    )
    paper_rows = {page: (c, a) for page, c, a in paper.TABLE14}
    _show("Table 14 — blocked Facebook pages (censored/allowed)",
          ["Page", "Paper", "Measured"],
          [[row.page, paper_rows.get(row.page, "-"),
            (row.censored, row.allowed)] for row in result[:12]])
    assert result[0].page == "Syrian.Revolution"
    by_page = {row.page: row for row in result}
    if "ShaamNews" in by_page:  # mostly-allowed page, like the paper
        assert by_page["ShaamNews"].allowed > by_page["ShaamNews"].censored


def test_table15_facebook_plugins(benchmark, bench_scenario):
    result = benchmark.pedantic(
        lambda: socialmedia.facebook_plugins(bench_scenario.full), rounds=3
    )
    paper_shares = dict(paper.TABLE15)
    _show("Table 15 — Facebook social-plugin elements (% of censored fb traffic)",
          ["Element", "Paper %", "Measured %"],
          [[row.element, paper_shares.get(row.element, "-"),
            f"{row.censored_share_pct:.2f}"] for row in result])
    top_two = {result[0].element, result[1].element}
    assert top_two == {"/plugins/like.php", "/extern/login_status.php"}
