"""Benchmark fixtures.

Three session-scoped scenarios:

* ``bench_scenario`` — the main deployment (default boosts) most
  benches analyze;
* ``social_scenario`` — redirect-target traffic boosted hard, for the
  Table 7/14 benches whose subject is a few thousand requests out of
  751 M in the paper;
* ``ip_scenario`` — raw-IP traffic boosted, for the Table 11/12
  benches.

Scale via the REPRO_BENCH_SCALE environment variable (total requests
of the main scenario; default 200000).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import build_scenario
from repro.workload.config import (
    DEFAULT_BOOSTS,
    DEFAULT_USER_DAY_BOOST,
    ScenarioConfig,
)

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))


@pytest.fixture(scope="session")
def bench_scenario():
    config = ScenarioConfig(
        total_requests=BENCH_SCALE,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )
    return build_scenario(config)


@pytest.fixture(scope="session")
def social_scenario():
    config = ScenarioConfig(
        total_requests=max(BENCH_SCALE // 3, 30_000),
        seed=2015,
        boosts=dict(DEFAULT_BOOSTS) | {"redirect-targets": 600.0},
    )
    return build_scenario(config)


@pytest.fixture(scope="session")
def ip_scenario():
    config = ScenarioConfig(
        total_requests=max(BENCH_SCALE // 3, 30_000),
        seed=2016,
        boosts=dict(DEFAULT_BOOSTS) | {"iphosts": 60.0},
    )
    return build_scenario(config)


@pytest.fixture(scope="session")
def unboosted_scenario():
    """True paper proportions, no boosts — used by the ablations."""
    config = ScenarioConfig(
        total_requests=BENCH_SCALE,
        seed=2017,
        boosts={},
    )
    return build_scenario(config)
