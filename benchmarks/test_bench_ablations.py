"""Ablation benches for the design choices DESIGN.md calls out.

1. Keyword collateral damage — remove the ``proxy`` keyword and
   measure the censored-volume drop (the paper attributes 53.6 % of
   censored traffic to it, largely non-sensitive URLs).
2. Domain-based redirection — uniform routing collapses Table 6's
   similarity structure.
3. Request-based logging inflation — page-level accounting of the
   censored share vs the request-level share the logs report.
4. Sampling fidelity — D_sample (4 %) error against the paper's CI
   argument.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import overview, proxies, stringfilter
from repro.analysis.common import censored_mask
from repro.datasets import build_scenario, proportion_confidence_interval
from repro.policy.syria import KEYWORDS, build_syrian_policy
from repro.proxy import ProxyFleet, RoutingPolicy


def test_ablation_proxy_keyword_collateral(benchmark, bench_scenario):
    """How much of the censorship is the 'proxy' keyword alone?"""
    result = benchmark.pedantic(
        lambda: stringfilter.keyword_stats(bench_scenario.full, KEYWORDS),
        rounds=2,
    )
    total_censored = overview.traffic_breakdown(bench_scenario.full).censored
    proxy_share = next(r for r in result if r.keyword == "proxy")
    print(f"\nAblation 1 — removing the 'proxy' keyword would drop "
          f"{proxy_share.censored_share_pct:.1f}% of censored traffic "
          f"({proxy_share.censored}/{total_censored}); paper: 53.6%")
    assert 30.0 < proxy_share.censored_share_pct < 75.0


def test_ablation_uniform_routing(benchmark, bench_scenario):
    """Re-run the fleet with uniform routing: SG-48's specialization
    (and Table 6's outlier structure) must disappear."""

    def rerun_uniform():
        generator = bench_scenario.generator
        policy = build_syrian_policy(
            generator.sites,
            tor_directory=generator.tor_directory,
            extra_blocked_addresses=generator.blocked_anonymizer_addresses(),
        )
        fleet = ProxyFleet(policy, routing=RoutingPolicy(overrides={}))
        rng = np.random.default_rng(99)
        day = "2011-08-03"
        requests = generator.generate_day(day, np.random.default_rng(3))
        records = fleet.process_all(requests, rng)
        from repro.frame import frame_from_records

        return frame_from_records(records)

    uniform_frame = benchmark.pedantic(rerun_uniform, rounds=1)
    uniform = proxies.proxy_similarity(uniform_frame)
    specialized = proxies.proxy_similarity(bench_scenario.full)

    def sg48_mean(matrix):
        return np.mean([
            matrix.value("SG-48", name)
            for name in matrix.proxies
            if name != "SG-48"
        ])

    print(f"\nAblation 2 — SG-48 mean similarity to peers: "
          f"specialized routing {sg48_mean(specialized):.2f} vs "
          f"uniform routing {sg48_mean(uniform):.2f} "
          "(specialization is what makes SG-48 the Table 6 outlier)")
    assert sg48_mean(uniform) > sg48_mean(specialized) + 0.15


def test_ablation_request_level_inflation(benchmark, bench_scenario):
    """The paper argues request-level logging inflates allowed volume:
    one censored *page* is one log line, one allowed page is many.
    Approximate page-level accounting by deduplicating on
    (client, host, 30-second window)."""

    def page_level_censored_share():
        frame = bench_scenario.user  # hashed clients -> page grouping
        censored = censored_mask(frame)
        keys = [
            f"{c}|{h}|{e // 30}"
            for c, h, e in zip(
                frame.col("c_ip"), frame.col("cs_host"), frame.col("epoch")
            )
        ]
        keys = np.array(keys, dtype=object)
        _, first_indices = np.unique(keys, return_index=True)
        page_censored = censored[first_indices]
        return 100.0 * page_censored.mean()

    page_share = benchmark.pedantic(page_level_censored_share, rounds=2)
    request_share = overview.traffic_breakdown(
        bench_scenario.user
    ).censored_pct
    print(f"\nAblation 3 — censored share: request-level "
          f"{request_share:.2f}% vs page-level {page_share:.2f}% "
          "(request logging dilutes the censored share, as the paper argues)")
    assert page_share > request_share


def test_ablation_sampling_fidelity(benchmark, bench_scenario):
    """D_sample's censored share vs D_full, against the CI bound."""

    def sample_error():
        full = overview.traffic_breakdown(bench_scenario.full)
        sample = overview.traffic_breakdown(bench_scenario.sample)
        return abs(full.censored_pct - sample.censored_pct) / 100.0

    error = benchmark.pedantic(sample_error, rounds=2)
    n = len(bench_scenario.sample)
    p = overview.traffic_breakdown(bench_scenario.sample).censored_pct / 100
    low, high = proportion_confidence_interval(p, n)
    bound = (high - low) / 2
    print(f"\nAblation 4 — sample error {error:.5f} vs 95% CI half-width "
          f"{bound:.5f} at n={n} (the paper quotes ±0.0001 at n=32M)")
    assert error < bound * 4  # within a generous multiple of the bound


def test_ablation_lru_cache(benchmark, bench_scenario):
    """Swap the calibrated probabilistic cache for the behavioural LRU
    and compare the PROXIED rate that *emerges* from URL repetition
    against the paper's 0.47 %."""

    def rerun_with_lru():
        from repro.frame import frame_from_records
        from repro.policy.cache import LruProxyCache

        generator = bench_scenario.generator
        policy = build_syrian_policy(
            generator.sites,
            tor_directory=generator.tor_directory,
            extra_blocked_addresses=generator.blocked_anonymizer_addresses(),
        )
        cache = LruProxyCache(capacity=30_000)
        fleet = ProxyFleet(policy, cache=cache)
        rng = np.random.default_rng(5)
        requests = generator.generate_day("2011-08-02", np.random.default_rng(6))
        records = fleet.process_all(requests, rng)
        return frame_from_records(records), cache

    frame, cache = benchmark.pedantic(rerun_with_lru, rounds=1)
    proxied = float((frame.col("sc_filter_result") == "PROXIED").mean()) * 100
    print(f"\nAblation 6 — behavioural LRU cache: hit rate "
          f"{cache.hit_rate * 100:.2f}%, PROXIED share {proxied:.2f}%. "
          "URL repetition alone would make far more traffic cache-"
          "servable than the logs' 0.47% PROXIED rate — evidence the "
          "appliances flagged only a narrow subset of cache decisions, "
          "which is why the calibrated probabilistic model is the "
          "default.")
    assert proxied > 2.0  # repetition-driven caching is substantial


def test_ablation_unboosted_proportions(benchmark, unboosted_scenario):
    """With no boosts the headline censored share lands on the paper's
    ~1 % — the boosts used elsewhere only inflate rare components."""
    result = benchmark.pedantic(
        lambda: overview.traffic_breakdown(unboosted_scenario.full), rounds=2
    )
    print(f"\nAblation 5 — unboosted censored share "
          f"{result.censored_pct:.2f}% (paper 0.98%), allowed "
          f"{result.allowed_pct:.2f}% (paper 93.25%)")
    assert 0.6 < result.censored_pct < 1.6
    assert result.allowed_pct > 91.0
