"""Performance benches for the substrates themselves.

Not paper reproductions — these track the throughput of the hot paths
(generation, policy evaluation, columnar group-bys, GeoIP lookup,
ELFF serialization) so regressions show up in the benchmark report.
"""

from __future__ import annotations

import io
import os
import time

import numpy as np

from repro.catalog.domains import build_domain_universe
from repro.frame import LogFrame
from repro.geoip import builtin_registry
from repro.logmodel.elff import read_log, write_log
from repro.logmodel.record import LogRecord
from repro.policy import KeywordRule, PolicyEngine, RequestView
from repro.policy.syria import build_syrian_policy
from repro.workload import TrafficGenerator
from repro.workload.config import small_config


def make_record(**overrides) -> LogRecord:
    values = dict(
        epoch=1312329600,
        c_ip="0.0.0.0",
        s_ip="82.137.200.42",
        cs_host="www.example.com",
    )
    values.update(overrides)
    return LogRecord(**values)


def test_perf_generator_throughput(benchmark):
    config = small_config(20_000, seed=55)
    generator = TrafficGenerator(config)

    def run():
        rng = np.random.default_rng(1)
        return len(generator.generate_day("2011-08-03", rng))

    count = benchmark(run)
    assert count > 3_000


def test_perf_policy_engine(benchmark):
    sites = build_domain_universe(tail_count=50)
    policy = build_syrian_policy(sites)
    engine = policy.base_engine
    views = [
        RequestView(host="www.google.com", path="/search", query="q=x"),
        RequestView(host="www.facebook.com", path="/plugins/like.php",
                    query="channel_url=xd_proxy.php"),
        RequestView(host="www.metacafe.com", path="/watch/1/x/"),
        RequestView(host="84.229.1.1", path="/"),
        RequestView(host="www.sitez.com", path="/page/1.html"),
    ] * 200

    def run():
        return sum(
            1 for view in views if engine.evaluate(view).exception_id != "-"
        )

    denied = benchmark(run)
    assert denied == 600  # plugins + metacafe + israeli subnet


def test_perf_keyword_rule(benchmark):
    rule = KeywordRule(["proxy", "hotspotshield", "ultrareach", "israel",
                        "ultrasurf"])
    view = RequestView(host="www.example.com", path="/some/ordinary/page",
                       query="session=1234567890")
    engine = PolicyEngine([rule])
    result = benchmark(lambda: [engine.evaluate(view) for _ in range(1000)])
    assert all(v.exception_id == "-" for v in result)


def test_perf_frame_groupby(benchmark):
    rng = np.random.default_rng(0)
    n = 200_000
    keys = np.array([f"domain{int(i)}.com" for i in rng.integers(0, 500, n)],
                    dtype=object)
    frame = LogFrame({
        "domain": keys,
        "value": rng.integers(0, 100, n),
    })
    result = benchmark(lambda: frame.groupby("domain").top(10))
    assert len(result) == 10


def test_perf_geoip_lookup(benchmark):
    db = builtin_registry()
    rng = np.random.default_rng(1)
    addresses = rng.integers(0, 2**32 - 1, 100_000)
    countries = benchmark(lambda: db.lookup_many(addresses))
    assert len(countries) == 100_000


def test_perf_sharded_engine_parallel_vs_serial(tmp_path):
    """Parallel-vs-serial throughput of the sharded simulate→analyze
    engine on the bench scenario.

    Always verifies worker-count-invariance (identical day records and
    identical Table 3/Table 4 numbers); the ≥1.5× speedup assertion for
    4 workers only fires on hosts that actually have ≥4 cores, since a
    process pool cannot beat serial on a single-core box.
    """
    from repro.engine import analyze_logs, simulate_day_records, write_logs
    from repro.workload.config import (
        DEFAULT_USER_DAY_BOOST,
        DEFAULT_BOOSTS,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    config = ScenarioConfig(
        total_requests=scale,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )

    start = time.perf_counter()
    serial_days = simulate_day_records(config, workers=1)
    simulate_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel_days = simulate_day_records(config, workers=4)
    simulate_parallel = time.perf_counter() - start

    assert list(serial_days) == list(parallel_days)
    for day in serial_days:
        assert serial_days[day] == parallel_days[day]

    paths = [
        path for path, _ in write_logs(serial_days, tmp_path, per_day=True)
    ]
    start = time.perf_counter()
    serial_analysis, _ = analyze_logs(paths, workers=1)
    analyze_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel_analysis, _ = analyze_logs(paths, workers=4)
    analyze_parallel = time.perf_counter() - start

    # Table 3 + Table 4 numbers identical at every worker count
    assert parallel_analysis == serial_analysis
    assert parallel_analysis.breakdown() == serial_analysis.breakdown()
    assert parallel_analysis.top_allowed(10) == serial_analysis.top_allowed(10)
    assert parallel_analysis.top_censored(10) == (
        serial_analysis.top_censored(10)
    )

    simulate_speedup = simulate_serial / simulate_parallel
    analyze_speedup = analyze_serial / analyze_parallel
    total = sum(len(records) for records in serial_days.values())
    print(
        f"\nengine @ {total:,} records: "
        f"simulate {simulate_serial:.2f}s -> {simulate_parallel:.2f}s "
        f"({simulate_speedup:.2f}x), "
        f"analyze {analyze_serial:.2f}s -> {analyze_parallel:.2f}s "
        f"({analyze_speedup:.2f}x) at 4 workers"
    )
    if (os.cpu_count() or 1) >= 4:
        assert simulate_speedup >= 1.5


def test_perf_fused_report_vs_two_pass(tmp_path):
    """Single fused pass vs the legacy write-then-read round trip.

    The fused path streams simulation straight into the analysis
    accumulator (no record list, no disk); the legacy path materializes
    the records, serializes them to ELFF, and re-reads them.  Both must
    produce the identical accumulator and the fused pass must win wall
    clock; records/sec and peak-RSS growth are reported for both (RSS
    is advisory — ``ru_maxrss`` is monotonic, so the fused pass runs
    first to keep its reading honest).
    """
    import resource

    from repro.engine import (
        analyze_logs,
        scenario_context,
        simulate_day_records,
        simulate_into,
        write_logs,
    )
    from repro.pipeline import StreamingAnalysisSink
    from repro.workload.config import (
        DEFAULT_BOOSTS,
        DEFAULT_USER_DAY_BOOST,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    config = ScenarioConfig(
        total_requests=scale,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )
    scenario_context(config)  # warm the shared context outside the timers

    def peak_rss_kb():
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    rss_before = peak_rss_kb()
    start = time.perf_counter()
    sink, _ = simulate_into(config, StreamingAnalysisSink(), workers=1)
    fused_seconds = time.perf_counter() - start
    fused_rss_growth = peak_rss_kb() - rss_before

    rss_before = peak_rss_kb()
    start = time.perf_counter()
    day_records = simulate_day_records(config, workers=1)
    paths = [path for path, _ in write_logs(day_records, tmp_path)]
    two_pass_analysis, _ = analyze_logs(paths, workers=1)
    two_pass_seconds = time.perf_counter() - start
    two_pass_rss_growth = peak_rss_kb() - rss_before

    assert sink.analysis == two_pass_analysis
    total = sink.analysis.total
    print(
        f"\nreport @ {total:,} records: "
        f"fused {fused_seconds:.2f}s "
        f"({total / fused_seconds:,.0f} rec/s, "
        f"peak-RSS growth {fused_rss_growth / 1024:.0f} MB) vs "
        f"two-pass {two_pass_seconds:.2f}s "
        f"({total / two_pass_seconds:,.0f} rec/s, "
        f"peak-RSS growth {two_pass_rss_growth / 1024:.0f} MB) — "
        f"{two_pass_seconds / fused_seconds:.2f}x"
    )
    assert fused_seconds < two_pass_seconds


def test_perf_retry_path_overhead():
    """Cost of the resilience layer: fault-free vs a 10 % transient
    fault plan (every hit recovered by one retry).

    Three numbers matter: the inert fault sites must cost nothing
    measurable (fault-free runs with and without the machinery differ
    only by noise — enforced structurally, since the no-plan run *is*
    the machinery with sites inert), a 10 % plan must leave the results
    untouched, and the retry overhead should stay within the work the
    re-run attempts themselves add (bounded loosely here; the exact
    split is reported for the benchmark log).
    """
    from repro.engine import RetryPolicy, simulate_day_records
    from repro.faults import FaultPlan
    from repro.workload.config import (
        DEFAULT_BOOSTS,
        DEFAULT_USER_DAY_BOOST,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    config = ScenarioConfig(
        total_requests=scale,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )
    retry = RetryPolicy(max_retries=2, backoff_base=0.0)
    plan = FaultPlan(seed=9, rate=0.10)
    days = [f"day:{day}" for day in config.days]
    hits = sum(plan.roll("shard.start", day) < plan.rate for day in days)
    assert hits >= 1  # the seed is chosen so the plan actually fires

    start = time.perf_counter()
    clean = simulate_day_records(config, workers=1, retry=retry)
    clean_seconds = time.perf_counter() - start

    start = time.perf_counter()
    faulted = simulate_day_records(
        config, workers=1, retry=retry, fault_plan=plan
    )
    faulted_seconds = time.perf_counter() - start

    assert faulted == clean  # retries leave no fingerprint
    overhead = faulted_seconds / clean_seconds
    total = sum(len(records) for records in clean.values())
    print(
        f"\nretry path @ {total:,} records: fault-free "
        f"{clean_seconds:.2f}s vs 10% transient plan "
        f"{faulted_seconds:.2f}s ({overhead:.2f}x, {hits}/{len(days)} "
        f"day shards hit once each)"
    )
    # A shard.start fault aborts before the day's work begins, so a
    # recovered hit costs only re-dispatch — in practice the overhead
    # is noise.  Bound it by one full re-run per hit plus padding so
    # the assertion survives loaded CI hosts.
    assert overhead < 1.0 + (hits / len(days)) + 0.5


def test_perf_checkpoint_overhead_and_resume_speedup(tmp_path):
    """Cost of the durable run ledger, and what it buys back.

    Two numbers: the per-shard write cost of ``checkpoint=`` on an
    uninterrupted run (artifact pickle + fsync'd journal line per day
    shard, reported as absolute overhead and a ratio), and the resume
    speedup when half the shards are already journaled — a resumed run
    should approach half the work of a cold one, and must stay
    byte-equal to it.
    """
    from repro.engine import RetryPolicy, simulate_day_records
    from repro.faults import FaultPlan, FaultRule
    from repro.runstate import RunCheckpoint, audit_run, run_fingerprint
    from repro.workload.config import (
        DEFAULT_BOOSTS,
        DEFAULT_USER_DAY_BOOST,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    config = ScenarioConfig(
        total_requests=scale,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )
    fingerprint = run_fingerprint("bench", seed=config.seed, scale=scale)
    days = list(config.days)

    start = time.perf_counter()
    plain = simulate_day_records(config, workers=1)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    journaled = simulate_day_records(
        config, workers=1,
        checkpoint=RunCheckpoint(tmp_path / "full", fingerprint),
    )
    journaled_seconds = time.perf_counter() - start
    assert journaled == plain  # the ledger leaves no fingerprint

    # Build a half-complete ledger: crash the first half of the days in
    # partial mode, so the later (heavier, user-day-boosted) half gets
    # journaled and resume skips the expensive shards.
    crash_half = FaultPlan(rules=tuple(
        FaultRule(site="shard.start", kind="crash", shard_id=f"day:{day}")
        for day in days[: len(days) // 2]
    ))
    simulate_day_records(
        config, workers=1, allow_partial=True, fault_plan=crash_half,
        retry=RetryPolicy(max_retries=0, backoff_base=0.0),
        checkpoint=RunCheckpoint(tmp_path / "half", fingerprint),
    )
    half_done = audit_run(tmp_path / "half").completed
    assert half_done == len(days) - len(days) // 2

    start = time.perf_counter()
    resumed = simulate_day_records(
        config, workers=1,
        checkpoint=RunCheckpoint(tmp_path / "half", fingerprint,
                                 resume=True),
    )
    resumed_seconds = time.perf_counter() - start
    assert resumed == plain  # resume is byte-equal to a cold run

    total = sum(len(records) for records in plain.values())
    overhead = journaled_seconds - plain_seconds
    print(
        f"\ncheckpoint @ {total:,} records / {len(days)} shards: "
        f"plain {plain_seconds:.2f}s vs journaled {journaled_seconds:.2f}s "
        f"({journaled_seconds / plain_seconds:.2f}x, "
        f"{overhead / len(days) * 1000:.1f} ms/shard write cost); "
        f"resume with {half_done}/{len(days)} shards done "
        f"{resumed_seconds:.2f}s ({plain_seconds / resumed_seconds:.2f}x "
        "vs cold)"
    )
    # The ledger writes a few MB per run; anything past 2x would mean
    # pickling or fsync regressed into the hot path.
    assert journaled_seconds < plain_seconds * 2.0
    # Half the shards are loaded, so the resume must beat a cold run.
    assert resumed_seconds < plain_seconds


def test_perf_batched_vs_scalar_analyze(tmp_path):
    """Column-batch execution vs record-at-a-time on the analyze path,
    with the result snapshotted to ``BENCH_batch.json``.

    Measures the full read→classify→fold pipeline over on-disk ELFF at
    the default bench scale, asserting state equality and recording
    records/sec, wall seconds and peak-RSS growth for both modes.  The
    issue targeted ≥5x; the measured ceiling in pure Python is ~4x —
    the pipeline is parse-bound (about a quarter of real log lines
    carry a quoted user-agent field), the scalar fold is already >1M
    rows/sec, and no C CSV parser (pandas/pyarrow) is available — so
    the CI floor asserts the conservative 2.5x that survives machine
    variance, while the JSON snapshot records the honest number.
    """
    import json
    import resource
    from pathlib import Path

    from repro.engine import analyze_logs, simulate_to_logs
    from repro.workload.config import (
        DEFAULT_BOOSTS,
        DEFAULT_USER_DAY_BOOST,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    batch_size = 1024
    config = ScenarioConfig(
        total_requests=scale,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )
    paths = [
        path for path, _ in simulate_to_logs(config, tmp_path, per_day=True)
    ]

    def peak_rss_kb():
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    def timed(mode_batch_size):
        best = float("inf")
        rss_before = peak_rss_kb()
        for _ in range(3):
            start = time.perf_counter()
            analysis, stats = analyze_logs(
                paths, workers=1, batch_size=mode_batch_size
            )
            best = min(best, time.perf_counter() - start)
        return analysis, stats, best, peak_rss_kb() - rss_before

    scalar, scalar_stats, scalar_seconds, scalar_rss = timed(None)
    batched, batched_stats, batched_seconds, batched_rss = timed(batch_size)

    assert batched == scalar
    assert batched_stats == scalar_stats
    total = scalar.total
    speedup = scalar_seconds / batched_seconds
    snapshot = {
        "schema": "repro.bench/1",
        "bench": "batched_vs_scalar_analyze",
        "records": total,
        "batch_size": batch_size,
        "scalar": {
            "seconds": round(scalar_seconds, 4),
            "records_per_sec": round(total / scalar_seconds),
            "peak_rss_growth_kb": scalar_rss,
        },
        "batched": {
            "seconds": round(batched_seconds, 4),
            "records_per_sec": round(total / batched_seconds),
            "peak_rss_growth_kb": batched_rss,
        },
        "speedup": round(speedup, 2),
    }
    out = Path(
        os.environ.get(
            "REPRO_BENCH_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_batch.json",
        )
    )
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(
        f"\nbatched analyze @ {total:,} records: "
        f"scalar {scalar_seconds:.2f}s "
        f"({total / scalar_seconds:,.0f} rec/s) vs "
        f"batch-size {batch_size} {batched_seconds:.2f}s "
        f"({total / batched_seconds:,.0f} rec/s) — {speedup:.2f}x "
        f"-> {out}"
    )
    if scale >= 100_000:
        assert speedup >= 2.5


def test_perf_distributed_lease_queue(tmp_path):
    """Lease-queue distributed execution at 1/2/4 workers plus the
    cost of a lease reclaim, snapshotted to ``BENCH_distributed.json``.

    Every worker count must merge to the exact bytes of the serial
    ``simulate_to_logs`` baseline — that invariant is asserted, the
    throughput numbers are recorded.  Distributed wall clock includes
    real worker-process startup (a ``python -m repro work`` interpreter
    per worker), so one worker is expected to trail the in-process
    serial path; the snapshot makes that overhead visible instead of
    hiding it.  The reclaim number times an otherwise identical
    one-worker run whose first shard starts under an already-expired
    lease from a dead claimant, so the delta is the requeue-and-re-run
    detour alone.
    """
    import json
    from pathlib import Path

    from repro.dispatch import WorkQueue, run_distributed, simulate_job_for
    from repro.engine import simulate_to_logs
    from repro.runstate import RunCheckpoint
    from repro.workload.config import (
        DEFAULT_BOOSTS,
        DEFAULT_USER_DAY_BOOST,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    config = ScenarioConfig(
        total_requests=scale,
        seed=2014,
        boosts=dict(DEFAULT_BOOSTS),
        user_day_boost=DEFAULT_USER_DAY_BOOST,
    )

    start = time.perf_counter()
    written = simulate_to_logs(config, tmp_path / "serial", per_day=True)
    serial_seconds = time.perf_counter() - start
    total = sum(count for _, count in written)
    baseline = {path.name: path.read_bytes() for path, _ in written}

    def merged_bytes(out_dir):
        return {
            path.name: path.read_bytes()
            for path in sorted(Path(out_dir).iterdir())
        }

    def timed_run(tag, spawn, prepare=None):
        out_dir = tmp_path / f"out-{tag}"
        queue_dir = tmp_path / f"queue-{tag}"
        job = simulate_job_for(config, out_dir, per_day=True)
        resume = False
        if prepare is not None:
            prepare(job, queue_dir)
            resume = True
        start = time.perf_counter()
        result = run_distributed(
            job, queue_dir, spawn=spawn, resume=resume
        )
        seconds = time.perf_counter() - start
        assert merged_bytes(out_dir) == baseline  # byte-identical merge
        return result, seconds

    fleet = {}
    for spawn in (1, 2, 4):
        result, seconds = timed_run(f"w{spawn}", spawn)
        assert result.counters.get("dispatch.shards.completed", 0) >= (
            len(result.labels)
        )
        fleet[str(spawn)] = {
            "seconds": round(seconds, 4),
            "records_per_sec": round(total / seconds),
            "lease_granted": result.counters.get(
                "dispatch.lease.granted", 0
            ),
        }

    def plant_expired_lease(job, queue_dir):
        """Seed the queue and leave the first shard claimed by a dead
        worker whose lease already expired."""
        checkpoint = RunCheckpoint(queue_dir, job.fingerprint())
        checkpoint.begin(job.labels())
        checkpoint.close()
        queue = WorkQueue(queue_dir, worker_id="bench-dead")
        queue.seed(job.to_spec(), ttl=30.0)
        victim = job.labels()[0]
        lease = queue.try_claim(victim)
        assert lease is not None
        queue.lease_path(victim).write_text(
            json.dumps({**lease.to_dict(), "deadline": time.time() - 60.0})
        )

    churn, churn_seconds = timed_run("reclaim", 1, plant_expired_lease)
    assert churn.counters.get("dispatch.lease.expired", 0) >= 1
    assert churn.counters.get("dispatch.lease.reclaimed", 0) >= 1
    reclaim_overhead = churn_seconds - fleet["1"]["seconds"]

    snapshot = {
        "schema": "repro.bench/1",
        "bench": "distributed_lease_queue",
        "records": total,
        "shards": len(churn.labels),
        "serial": {
            "seconds": round(serial_seconds, 4),
            "records_per_sec": round(total / serial_seconds),
        },
        "workers": fleet,
        "reclaim": {
            "seconds": round(churn_seconds, 4),
            "records_per_sec": round(total / churn_seconds),
            "overhead_vs_one_worker_seconds": round(reclaim_overhead, 4),
            "leases_reclaimed": churn.counters.get(
                "dispatch.lease.reclaimed", 0
            ),
        },
    }
    out = Path(
        os.environ.get(
            "REPRO_BENCH_DISTRIBUTED_OUT",
            Path(__file__).resolve().parent.parent
            / "BENCH_distributed.json",
        )
    )
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    lines = ", ".join(
        f"{spawn}w {entry['records_per_sec']:,} rec/s"
        for spawn, entry in fleet.items()
    )
    print(
        f"\ndistributed @ {total:,} records / {len(churn.labels)} shards: "
        f"serial {total / serial_seconds:,.0f} rec/s, {lines}; "
        f"reclaim detour +{reclaim_overhead:.2f}s -> {out}"
    )
    if (os.cpu_count() or 1) >= 4:
        # More workers must not be slower end to end (startup included).
        assert fleet["4"]["seconds"] < fleet["1"]["seconds"]


def test_perf_elff_roundtrip(benchmark):
    records = [
        make_record(cs_host=f"host{i % 50}.com", epoch=1312329600 + i)
        for i in range(5_000)
    ]

    def run():
        buffer = io.StringIO()
        write_log(records, buffer)
        buffer.seek(0)
        return sum(1 for _ in read_log(buffer))

    count = benchmark(run)
    assert count == 5_000


def test_perf_regime_throughput(tmp_path):
    """Per-regime simulate→analyze throughput, snapshotted to
    ``BENCH_regimes.json``.

    Every registered regime profile runs the same fused
    simulate→streaming-analyze pass over an identical workload spec, so
    the snapshot shows what each appliance model costs relative to the
    Syrian proxy baseline (the DNS injector and the DPI box skip the
    cache/categorizer work, so they should be at least as fast).  The
    assertion layer only pins invariants — same record volume per
    regime and a sane positive rate — the honest numbers live in the
    JSON for the benchmark report.
    """
    import json
    from pathlib import Path

    from repro.engine import scenario_context, simulate_into
    from repro.pipeline import StreamingAnalysisSink
    from repro.regimes import available_regimes
    from repro.workload.config import (
        DEFAULT_BOOSTS,
        DEFAULT_USER_DAY_BOOST,
        ScenarioConfig,
    )

    scale = int(os.environ.get("REPRO_BENCH_SCALE", "200000"))
    regimes = {}
    totals = set()
    for name in available_regimes():
        config = ScenarioConfig(
            total_requests=scale,
            seed=2014,
            boosts=dict(DEFAULT_BOOSTS),
            user_day_boost=DEFAULT_USER_DAY_BOOST,
            regime=name,
        )
        scenario_context(config)  # warm the context outside the timer
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            sink, _ = simulate_into(config, StreamingAnalysisSink(),
                                    workers=1)
            best = min(best, time.perf_counter() - start)
        breakdown = sink.analysis.breakdown()
        total = breakdown.total
        totals.add(total)
        regimes[name] = {
            "seconds": round(best, 4),
            "records_per_sec": round(total / best),
            "censored_pct": round(breakdown.censored_pct, 2),
        }
        assert total > 0 and best > 0

    # Identical workload spec → identical record volume per regime.
    assert len(totals) == 1
    total = totals.pop()
    snapshot = {
        "schema": "repro.bench/1",
        "bench": "regime_throughput",
        "records": total,
        "regimes": regimes,
    }
    out = Path(
        os.environ.get(
            "REPRO_BENCH_REGIMES_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_regimes.json",
        )
    )
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    lines = ", ".join(
        f"{name} {entry['records_per_sec']:,} rec/s"
        for name, entry in regimes.items()
    )
    print(f"\nregime throughput @ {total:,} records: {lines} -> {out}")
